"""Plain-text reporting of experiment series (the paper's figures).

Each figure in the paper is a family of series (one per method) over a
swept parameter, with panels for building time, oracle size, query time
and error.  :func:`format_series_table` renders exactly those panels as
aligned text tables so a benchmark run reads like the paper's plots.
"""

from __future__ import annotations

from typing import Dict, List

from .harness import MethodResult

__all__ = ["format_series_table", "format_result_row", "SeriesData"]

# sweep value -> list of per-method results
SeriesData = Dict[str, List[MethodResult]]


def format_result_row(result: MethodResult) -> str:
    """One-line summary of a single method measurement."""
    return (f"{result.method:<12} build {result.build_seconds:8.3f}s  "
            f"size {result.size_mb:9.4f}MB  "
            f"query {result.query_ms:9.4f}ms  "
            f"err mean {result.errors.mean:.4f} max {result.errors.max:.4f}")


def format_series_table(title: str, sweep_name: str,
                        series: SeriesData) -> str:
    """Render the four panels (build / size / query / error) as text.

    ``series`` maps the sweep value (as string) to the method results
    measured at that value; methods are taken from the first row.
    """
    if not series:
        raise ValueError("empty series")
    sweep_values = list(series)
    methods = [result.method for result in series[sweep_values[0]]]

    def panel(header: str, cell) -> str:
        width = max(12, *(len(m) + 2 for m in methods))
        lines = [header]
        head = f"{sweep_name:>10} |" + "".join(
            f"{m:>{width}}" for m in methods)
        lines.append(head)
        lines.append("-" * len(head))
        for value in sweep_values:
            row = f"{value:>10} |"
            by_method = {r.method: r for r in series[value]}
            for method in methods:
                result = by_method.get(method)
                row += f"{cell(result):>{width}}" if result else " " * width
            lines.append(row)
        return "\n".join(lines)

    blocks = [
        f"== {title} ==",
        panel("(a) Building time (s)",
              lambda r: f"{r.build_seconds:.3f}"),
        panel("(b) Oracle size (MB)",
              lambda r: f"{r.size_mb:.4f}"),
        panel("(c) Query time (ms)",
              lambda r: f"{r.query_ms:.4f}"),
        panel("(d) Error (mean relative)",
              lambda r: f"{r.errors.mean:.4f}"),
    ]
    return "\n\n".join(blocks) + "\n"
