"""One runner per evaluation figure (Figures 8-14 of the paper).

Each ``figure_N`` function executes the corresponding sweep at a
configurable scale and returns the series data; ``render=True`` prints
the paper-shaped four-panel table.  The benchmark files under
``benchmarks/`` are thin wrappers around these runners — see the
per-experiment index in DESIGN.md.

The sweeps keep the paper's *relative* ranges (ε over {0.05..0.25},
n over a 3x span, N over a 5-step ladder) at laptop-scale absolute
sizes; see DESIGN.md substitutions 2 and 4.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..terrain.generation import refine_centroid, simplify_grid
from ..terrain.poi import pois_from_vertices, sample_clustered
from .datasets import load_dataset
from .harness import (
    MethodResult,
    run_a2a_experiment,
    run_p2p_experiment,
)
from .reporting import SeriesData, format_series_table

__all__ = [
    "EPSILON_SWEEP",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
]

EPSILON_SWEEP = (0.05, 0.10, 0.15, 0.20, 0.25)


def _emit(title: str, sweep_name: str, series: SeriesData,
          render: bool) -> SeriesData:
    if render:
        print(format_series_table(title, sweep_name, series))
    return series


def figure8(scale: str = "tiny", epsilons: Sequence[float] = EPSILON_SWEEP,
            num_queries: int = 100, render: bool = False) -> SeriesData:
    """Figure 8: effect of ε on SF-small, P2P, all five methods."""
    dataset = load_dataset("sf-small", scale)
    methods = ["SE(Greedy)", "SE(Random)", "SE-Naive", "SP-Oracle", "K-Algo"]
    series: SeriesData = {}
    for epsilon in epsilons:
        series[f"{epsilon:g}"] = run_p2p_experiment(
            dataset.mesh, dataset.pois, epsilon, methods,
            num_queries=num_queries, seed=8)
    return _emit("Figure 8: effect of eps, SF-small, P2P", "eps",
                 series, render)


def figure9(scale: str = "tiny",
            poi_counts: Optional[Sequence[int]] = None,
            epsilon: float = 0.1, num_queries: int = 100,
            render: bool = False) -> SeriesData:
    """Figure 9: effect of n on SF, P2P (SE vs SP-Oracle vs K-Algo).

    SP-Oracle is POI-independent, so — like the paper's flat curves —
    its build/size are measured once and replicated across the sweep.
    """
    dataset = load_dataset("sf", scale)
    if poi_counts is None:
        base = dataset.num_pois
        poi_counts = [max(4, base * k // 3) for k in (1, 2, 3, 4, 5)]
    series: SeriesData = {}
    sp_row: Optional[MethodResult] = None
    for count in poi_counts:
        pois = sample_clustered(dataset.mesh, count, seed=90)
        methods = ["SE(Random)", "K-Algo"]
        results = run_p2p_experiment(dataset.mesh, pois, epsilon, methods,
                                     num_queries=num_queries, seed=9)
        if sp_row is None:
            sp_results = run_p2p_experiment(
                dataset.mesh, pois, epsilon, ["SP-Oracle"],
                num_queries=num_queries, seed=9)
            sp_row = sp_results[0]
        else:
            # Re-time queries on the new POI set would need a rebuild;
            # the oracle itself is unchanged, so reuse the measurement.
            pass
        results.append(sp_row)
        series[str(count)] = results
    return _emit("Figure 9: effect of n, SF, P2P", "n", series, render)


def figure10(scale: str = "tiny",
             vertex_targets: Optional[Sequence[int]] = None,
             epsilon: float = 0.1, num_queries: int = 100,
             render: bool = False) -> SeriesData:
    """Figure 10: effect of N on BH, P2P (SE vs K-Algo).

    The N ladder is produced the way the paper does it: simplify the
    base terrain downward and centroid-refine it upward ("enlarged BH"),
    keeping the POI set fixed.
    """
    dataset = load_dataset("bearhead", scale)
    base_n = dataset.mesh.num_vertices
    if vertex_targets is None:
        vertex_targets = [base_n // 4, base_n // 2, base_n,
                          base_n * 2, base_n * 4]
    measured: Dict[int, List[MethodResult]] = {}
    for target in vertex_targets:
        mesh = dataset.mesh
        if target < base_n:
            mesh = simplify_grid(mesh, target)
        while mesh.num_vertices < target:
            mesh = refine_centroid(mesh)
        if mesh.num_vertices in measured:
            continue  # simplification granularity can repeat a size
        pois = sample_clustered(mesh, dataset.num_pois, seed=100)
        results = run_p2p_experiment(mesh, pois, epsilon,
                                     ["SE(Random)", "K-Algo"],
                                     num_queries=num_queries, seed=10)
        measured[mesh.num_vertices] = results
    series: SeriesData = {str(n): measured[n] for n in sorted(measured)}
    return _emit("Figure 10: effect of N, BH, P2P", "N", series, render)


def figure11(scale: str = "tiny",
             vertex_targets: Optional[Sequence[int]] = None,
             epsilon: float = 0.1, num_queries: int = 100,
             render: bool = False) -> SeriesData:
    """Figure 11: effect of n on SF, V2V (all vertices are POIs, n = N)."""
    dataset = load_dataset("sf", scale)
    base_n = dataset.mesh.num_vertices
    if vertex_targets is None:
        vertex_targets = [max(16, base_n * k // 5) for k in (1, 2, 3, 4, 5)]
    series: SeriesData = {}
    for target in vertex_targets:
        mesh = simplify_grid(dataset.mesh, target)
        pois = pois_from_vertices(mesh)
        results = run_p2p_experiment(mesh, pois, epsilon,
                                     ["SE(Random)", "SP-Oracle", "K-Algo"],
                                     num_queries=num_queries, seed=11)
        series[str(len(pois))] = results
    return _emit("Figure 11: effect of n, SF, V2V", "n=N", series, render)


def figure12(scale: str = "tiny",
             epsilons: Sequence[float] = EPSILON_SWEEP,
             num_queries: int = 20, big_n: Optional[int] = None,
             render: bool = False) -> Dict[str, SeriesData]:
    """Figure 12: A2A queries and P2P with n > N on low-res BH.

    Returns two series families: ``a2a`` (panels a-c) and ``p2p_big_n``
    (panel d) — the build/size columns coincide because the oracle is
    the same POI-independent structure (Appendix D).
    """
    dataset = load_dataset("bearhead", scale)
    mesh = dataset.mesh
    if big_n is None:
        big_n = 2 * mesh.num_vertices  # the n > N regime
    a2a_series: SeriesData = {}
    p2p_series: SeriesData = {}
    for epsilon in epsilons:
        results = run_a2a_experiment(mesh, epsilon,
                                     num_queries=num_queries,
                                     sites_per_edge=0, seed=12)
        a2a_series[f"{epsilon:g}"] = results

        from ..core.a2a import A2AOracle
        import time as _time
        pois = sample_clustered(mesh, big_n, seed=120)
        oracle = A2AOracle(mesh, epsilon, sites_per_edge=0,
                           points_per_edge=1, seed=12).build()
        from .harness import generate_query_pairs
        from ..analysis.error_stats import measure_errors
        from ..geodesic.engine import GeodesicEngine
        pairs = generate_query_pairs(len(pois), num_queries, seed=12)
        reference = GeodesicEngine(mesh, pois, points_per_edge=1)
        started = _time.perf_counter()
        for source, target in pairs:
            oracle.query_p2p(pois, source, target)
        mean_query = (_time.perf_counter() - started) / len(pairs)
        errors = measure_errors(
            lambda s, t: oracle.query_p2p(pois, s, t),
            reference.distance, pairs)
        p2p_series[f"{epsilon:g}"] = [MethodResult(
            method="SE", build_seconds=oracle.stats.total_seconds,
            size_bytes=oracle.size_bytes(),
            query_seconds_mean=mean_query, errors=errors)]
    if render:
        print(format_series_table(
            "Figure 12(a-c): A2A queries, BH low-res", "eps", a2a_series))
        print(format_series_table(
            f"Figure 12(d): P2P with n={big_n} > N={mesh.num_vertices}",
            "eps", p2p_series))
    return {"a2a": a2a_series, "p2p_big_n": p2p_series}


def _epsilon_figure(dataset_name: str, title: str, scale: str,
                    epsilons: Sequence[float], num_queries: int,
                    render: bool) -> SeriesData:
    dataset = load_dataset(dataset_name, scale)
    series: SeriesData = {}
    for epsilon in epsilons:
        series[f"{epsilon:g}"] = run_p2p_experiment(
            dataset.mesh, dataset.pois, epsilon,
            ["SE(Random)", "K-Algo"],
            num_queries=num_queries, seed=13)
    return _emit(title, "eps", series, render)


def figure13(scale: str = "tiny", epsilons: Sequence[float] = EPSILON_SWEEP,
             num_queries: int = 100, render: bool = False) -> SeriesData:
    """Figure 13: effect of ε on BearHead, P2P (SE vs K-Algo)."""
    return _epsilon_figure("bearhead",
                           "Figure 13: effect of eps, BearHead, P2P",
                           scale, epsilons, num_queries, render)


def figure14(scale: str = "tiny", epsilons: Sequence[float] = EPSILON_SWEEP,
             num_queries: int = 100, render: bool = False) -> SeriesData:
    """Figure 14: effect of ε on EaglePeak, P2P (SE vs K-Algo)."""
    return _epsilon_figure("eaglepeak",
                           "Figure 14: effect of eps, EaglePeak, P2P",
                           scale, epsilons, num_queries, render)
