"""Dataset registry: laptop-scale analogues of BH / EP / SF (Table 2).

The paper's terrains (BearHead, EaglePeak, San Francisco South) are
DEM downloads we cannot redistribute; per DESIGN.md substitution 2 we
generate fractal terrains with the same *relative* shape — planar
extents and POI-to-vertex ratios follow Table 2, while absolute vertex
counts are scaled down to what pure Python can sweep (the paper's own
"smaller version of SF" with 1k vertices and 60 POIs is reproduced at
full scale).

Every dataset is deterministic given its name and scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal, Tuple

from ..terrain.generation import make_terrain
from ..terrain.mesh import TriangleMesh
from ..terrain.poi import POISet, sample_clustered

__all__ = ["Dataset", "load_dataset", "DATASET_NAMES", "SCALES"]

Scale = Literal["tiny", "small", "bench", "large"]

SCALES: Tuple[str, ...] = ("tiny", "small", "bench", "large")

# name -> (extent_km_x, extent_km_y, relief_m, roughness, seed)
_SHAPES: Dict[str, Tuple[float, float, float, float, int]] = {
    # BearHead: 14km x 10km, mountainous (Table 2).
    "bearhead": (14.0, 10.0, 1200.0, 0.60, 101),
    # EaglePeak: 10.7km x 14km, alpine.
    "eaglepeak": (10.7, 14.0, 1500.0, 0.65, 202),
    # San Francisco South: 14km x 11.1km, gentler coastal hills.
    "sf": (14.0, 11.1, 500.0, 0.45, 303),
    # The paper's smaller SF sub-region: 1k vertices, 60 POIs.
    "sf-small": (2.0, 2.0, 120.0, 0.45, 304),
}

# scale -> (grid_exponent, poi_count) per dataset.
_SIZES: Dict[str, Dict[str, Tuple[int, int]]] = {
    "tiny": {
        "bearhead": (3, 16), "eaglepeak": (3, 16),
        "sf": (3, 24), "sf-small": (3, 12),
    },
    "small": {
        "bearhead": (4, 40), "eaglepeak": (4, 40),
        "sf": (4, 60), "sf-small": (4, 30),
    },
    "bench": {
        # sf-small stays small because Figure 8 runs SE-Naive and
        # SP-Oracle on it (the paper used its small SF for the same
        # reason: SE-Naive "is not feasible on any of the full datasets").
        "bearhead": (5, 60), "eaglepeak": (5, 60),
        "sf": (5, 90), "sf-small": (4, 60),
    },
    "large": {
        "bearhead": (6, 120), "eaglepeak": (6, 120),
        "sf": (6, 200), "sf-small": (5, 60),
    },
}

DATASET_NAMES: Tuple[str, ...] = tuple(_SHAPES)


@dataclass
class Dataset:
    """A terrain + POI workload with its provenance."""

    name: str
    scale: str
    mesh: TriangleMesh
    pois: POISet
    paper_vertices: str
    paper_pois: str

    @property
    def num_vertices(self) -> int:
        return self.mesh.num_vertices

    @property
    def num_pois(self) -> int:
        return len(self.pois)


_PAPER_ROWS = {
    "bearhead": ("1.4M", "4k"),
    "eaglepeak": ("1.5M", "4k"),
    "sf": ("170k", "51k"),
    "sf-small": ("1k", "60"),
}


def load_dataset(name: str, scale: Scale = "bench") -> Dataset:
    """Build a named dataset analogue at the requested scale.

    Parameters
    ----------
    name:
        One of ``bearhead``, ``eaglepeak``, ``sf``, ``sf-small``.
    scale:
        ``tiny`` (unit tests), ``bench`` (benchmarks) or ``large``.
    """
    key = name.lower()
    if key not in _SHAPES:
        raise KeyError(f"unknown dataset {name!r}; choose from "
                       f"{sorted(_SHAPES)}")
    if scale not in _SIZES:
        raise KeyError(f"unknown scale {scale!r}; choose from {SCALES}")
    extent_x, extent_y, relief, roughness, seed = _SHAPES[key]
    exponent, poi_count = _SIZES[scale][key]
    mesh = make_terrain(grid_exponent=exponent,
                        extent=(extent_x * 1000.0, extent_y * 1000.0),
                        relief=relief, roughness=roughness, seed=seed)
    pois = sample_clustered(mesh, poi_count, seed=seed + 1)
    paper_vertices, paper_pois = _PAPER_ROWS[key]
    return Dataset(name=key, scale=scale, mesh=mesh, pois=pois,
                   paper_vertices=paper_vertices, paper_pois=paper_pois)
