"""Experiment harness: datasets, measurement protocol, figure runners."""

from .datasets import DATASET_NAMES, SCALES, Dataset, load_dataset
from .figures import (
    EPSILON_SWEEP,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
)
from .harness import (
    MethodResult,
    P2P_METHODS,
    generate_a2a_pairs,
    generate_query_pairs,
    run_a2a_experiment,
    run_p2p_experiment,
)
from .reporting import format_result_row, format_series_table
from .tables import (
    table1_complexity_probes,
    table2_dataset_statistics,
    table3_query_distances,
)

__all__ = [
    "Dataset",
    "load_dataset",
    "DATASET_NAMES",
    "SCALES",
    "MethodResult",
    "P2P_METHODS",
    "generate_query_pairs",
    "generate_a2a_pairs",
    "run_p2p_experiment",
    "run_a2a_experiment",
    "format_result_row",
    "format_series_table",
    "EPSILON_SWEEP",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "table1_complexity_probes",
    "table2_dataset_statistics",
    "table3_query_distances",
]
