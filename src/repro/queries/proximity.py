"""Proximity queries built on the distance oracle (Section 1.1 / 1.2).

The paper motivates SE as the substrate for "proximity queries such as
nearest neighbor queries, range queries and reverse nearest neighbor
queries".  This module provides those three query types over any object
answering POI-to-POI distance queries:

* :func:`k_nearest_neighbors` — kNN by geodesic distance;
* :func:`range_query` — all POIs within a geodesic radius;
* :func:`reverse_nearest_neighbors` — monochromatic RNN: POIs whose
  nearest neighbour is the query POI.

Cost model
----------
Every function accepts either protocol and picks the fastest path the
oracle supports:

* **batched** (:class:`BatchDistanceOracleProtocol` — a compiled
  :class:`~repro.core.oracle.SEOracle`, a :class:`~repro.core.compiled.
  CompiledOracle`, or a :class:`~repro.baselines.full_apsp.
  FullAPSPBaseline`): one ``query_batch`` call materialises the whole
  candidate row as a float64 array, so a kNN/range scan costs a few
  NumPy passes over ``n`` distances plus an ``argpartition`` — roughly
  O(n + k log k) selection work instead of a Python loop with a full
  sort.  RNN consumes one ``query_batch`` per candidate row (O(n²)
  distances, vectorised row-wise).
* **scalar** (:class:`DistanceOracleProtocol` — a
  :class:`~repro.core.dynamic.DynamicSEOracle`, a
  :class:`~repro.baselines.kalgo.KAlgo`, or any plain ``query``
  object): O(n) individual probes per scan, the design the paper
  enables — cheap probes make scan-based proximity queries practical.

Both paths return identical results (the golden suite in
``tests/test_proximity_vectorized.py`` pins this, tie-breaking
included); the ``*_scalar`` reference implementations stay exported as
the executable specification.

Unreachable POIs
----------------
A POI pair on disconnected terrain components has no geodesic path; an
oracle reports that as ``inf`` (or ``nan`` from a defective backend).
Sorting raw ``(distance, poi)`` tuples would order such entries
nondeterministically under ``nan``, so the semantics are explicit:

* kNN and range queries **exclude** unreachable POIs — a non-finite
  distance is never a neighbour;
* :func:`nearest_neighbor` raises ``ValueError`` when no reachable
  POI exists;
* RNN excludes candidates unreachable from the query POI, and an
  unreachable third POI never disqualifies a candidate (``inf`` loses
  every strict comparison).
"""

from __future__ import annotations

import math
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

__all__ = [
    "DistanceOracleProtocol",
    "BatchDistanceOracleProtocol",
    "k_nearest_neighbors",
    "k_nearest_neighbors_scalar",
    "range_query",
    "range_query_scalar",
    "reverse_nearest_neighbors",
    "reverse_nearest_neighbors_scalar",
    "nearest_neighbor",
]


class DistanceOracleProtocol(Protocol):
    """Anything answering POI-to-POI distance queries one at a time."""

    def query(self, source: int, target: int) -> float: ...


class BatchDistanceOracleProtocol(Protocol):
    """Anything answering aligned batches of distance queries at once."""

    def query_batch(self, sources: Sequence[int],
                    targets: Sequence[int]) -> np.ndarray: ...


def _distance_row(oracle, source: int, targets: np.ndarray) -> np.ndarray:
    """Distances from ``source`` to every id in ``targets`` (float64).

    Dispatches to ``query_batch`` when the oracle has one (one
    vectorised call — every :class:`~repro.core.index.DistanceIndex`
    does), else loops the scalar protocol.
    """
    if hasattr(oracle, "query_batch"):
        sources = np.full(targets.shape, source, dtype=np.intp)
        return np.asarray(oracle.query_batch(sources, targets),
                          dtype=np.float64)
    return np.array([oracle.query(source, int(target))
                     for target in targets], dtype=np.float64)


def _oracle_universe(oracle) -> Optional[np.ndarray]:
    """The id universe an index itself declares, or ``None`` for the
    dense ``range(oracle.num_pois)``.

    An updatable index (``supports_updates``) may hold sparse live ids
    after deletes, where ``range(num_pois)`` would address tombstoned
    POIs — its ``live_ids()`` is the universe.  Everything else is
    dense.
    """
    if (getattr(oracle, "supports_updates", False)
            and hasattr(oracle, "live_ids")):
        return np.asarray(oracle.live_ids(), dtype=np.intp)
    return None


def _dense_count(oracle, num_pois) -> int:
    if num_pois is not None:
        return int(num_pois)
    count = getattr(oracle, "num_pois", None)
    if count is None:
        raise ValueError(
            "oracle exposes no num_pois; pass num_pois= or candidates=")
    return int(count)


def _candidate_ids(oracle, source: int, num_pois,
                   candidates) -> np.ndarray:
    """The candidate target ids of a proximity scan (``source``
    excluded).

    With neither ``num_pois`` nor ``candidates`` the universe comes
    from the index itself (:func:`_oracle_universe`) — any
    :class:`~repro.core.index.DistanceIndex` works unmodified.
    ``candidates`` still overrides with an explicit id universe, and
    ``num_pois`` still scopes the dense prefix, for callers that scan
    a subset of a larger oracle.
    """
    if candidates is None and num_pois is None:
        candidates = _oracle_universe(oracle)
    if candidates is not None:
        ids = np.asarray(candidates, dtype=np.intp)
        return ids[ids != source]
    return np.array([target
                     for target in range(_dense_count(oracle, num_pois))
                     if target != source], dtype=np.intp)


# ----------------------------------------------------------------------
# k nearest neighbors
# ----------------------------------------------------------------------
def k_nearest_neighbors(oracle, source: int, k: int,
                        num_pois: Optional[int] = None,
                        candidates: Optional[Sequence[int]] = None
                        ) -> List[Tuple[int, float]]:
    """The ``k`` POIs nearest to ``source`` (excluding itself).

    Returns ``(poi, distance)`` pairs sorted by distance (ties broken
    by POI index for determinism).  Unreachable POIs (non-finite
    distance) are excluded; fewer than ``k`` results mean fewer than
    ``k`` reachable POIs exist.  ``candidates`` names an explicit id
    universe (sparse live ids of a mutable index) in place of the
    dense ``range(num_pois)``.

    Selection is O(n) oracle probes — one ``query_batch`` on a batched
    oracle — plus an ``argpartition`` restricted to the ``k`` smallest
    distances, so only the winners pay the comparison sort.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    targets = _candidate_ids(oracle, source, num_pois, candidates)
    if k == 0 or targets.size == 0:
        return []
    distances = _distance_row(oracle, source, targets)
    reachable = np.isfinite(distances)
    targets, distances = targets[reachable], distances[reachable]
    if 0 < k < targets.size:
        # Partition on distance alone, then widen to every tie of the
        # cutoff value so the (distance, poi) tie-break below stays
        # exact — argpartition's boundary choice is arbitrary.
        nearest = np.argpartition(distances, k - 1)[:k]
        cutoff = distances[nearest].max()
        keep = distances <= cutoff
        targets, distances = targets[keep], distances[keep]
    order = np.lexsort((targets, distances))[:k]
    return [(int(targets[i]), float(distances[i])) for i in order]


def k_nearest_neighbors_scalar(oracle: DistanceOracleProtocol, source: int,
                               k: int, num_pois: Optional[int] = None,
                               candidates: Optional[Sequence[int]] = None
                               ) -> List[Tuple[int, float]]:
    """Reference implementation of :func:`k_nearest_neighbors`.

    Pure-Python scan with a full sort; the vectorised path must match
    it result-for-result (including tie-breaks).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    hits = [
        (distance, int(target))
        for target in _candidate_ids(oracle, source, num_pois,
                                     candidates)
        if math.isfinite(distance := oracle.query(source, int(target)))
    ]
    hits.sort()
    return [(poi, distance) for distance, poi in hits[:k]]


def nearest_neighbor(oracle, source: int,
                     num_pois: Optional[int] = None,
                     candidates: Optional[Sequence[int]] = None
                     ) -> Tuple[int, float]:
    """The single nearest reachable POI to ``source``.

    Raises ``ValueError`` when no other reachable POI exists.
    """
    result = k_nearest_neighbors(oracle, source, 1, num_pois,
                                 candidates=candidates)
    if not result:
        raise ValueError("no reachable POI exists")
    return result[0]


# ----------------------------------------------------------------------
# range queries
# ----------------------------------------------------------------------
def range_query(oracle, source: int, radius: float,
                num_pois: Optional[int] = None,
                candidates: Optional[Sequence[int]] = None
                ) -> List[Tuple[int, float]]:
    """All POIs within geodesic ``radius`` of ``source`` (excl. itself).

    Results are ``(poi, distance)`` sorted by distance (ties by POI
    index); unreachable POIs are never inside a finite radius.  One
    ``query_batch`` plus a mask on a batched oracle; ``candidates``
    names a sparse id universe as in :func:`k_nearest_neighbors`.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    targets = _candidate_ids(oracle, source, num_pois, candidates)
    if targets.size == 0:
        return []
    distances = _distance_row(oracle, source, targets)
    inside = np.isfinite(distances) & (distances <= radius)
    targets, distances = targets[inside], distances[inside]
    order = np.lexsort((targets, distances))
    return [(int(targets[i]), float(distances[i])) for i in order]


def range_query_scalar(oracle: DistanceOracleProtocol, source: int,
                       radius: float, num_pois: Optional[int] = None,
                       candidates: Optional[Sequence[int]] = None
                       ) -> List[Tuple[int, float]]:
    """Reference implementation of :func:`range_query` (pure Python)."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    hits = [
        (distance, int(target))
        for target in _candidate_ids(oracle, source, num_pois,
                                     candidates)
        if (distance := oracle.query(source, int(target))) <= radius
        and math.isfinite(distance)
    ]
    hits.sort()
    return [(poi, distance) for distance, poi in hits]


# ----------------------------------------------------------------------
# reverse nearest neighbors
# ----------------------------------------------------------------------
def reverse_nearest_neighbors(oracle, source: int,
                              num_pois: Optional[int] = None,
                              candidates: Optional[Sequence[int]] = None
                              ) -> List[int]:
    """Monochromatic RNN: POIs whose nearest neighbour is ``source``.

    Note the asymmetry with kNN: ``q`` is in ``RNN(source)`` iff no
    third POI is strictly closer to ``q`` than ``source`` is.
    Candidates unreachable from ``source`` are excluded; an unreachable
    third POI never disqualifies a candidate.  ``candidates`` scopes
    the whole query to an explicit id universe (candidates *and* the
    disqualifying third POIs — ids outside it do not exist); it must
    contain ``source``.  With neither argument the universe comes from
    the index itself (:func:`_oracle_universe`, dense
    ``range(oracle.num_pois)`` otherwise); ``num_pois`` still scopes
    the query to a dense prefix of a larger oracle, and POIs outside
    the scope must not act as disqualifying third POIs.

    On a batched oracle the whole universe resolves in one
    ``query_matrix`` call (row-wise ``query_batch`` otherwise); plain
    scalar oracles fall back to the probe-per-pair scan.
    """
    if candidates is None and num_pois is None:
        candidates = _oracle_universe(oracle)
    if candidates is not None:
        ids = np.asarray(candidates, dtype=np.intp)
        source_pos = np.flatnonzero(ids == source)
        if source_pos.size != 1:
            raise ValueError(
                "candidates must contain the source id exactly once")
        source_pos = int(source_pos[0])
    else:
        ids = np.arange(_dense_count(oracle, num_pois), dtype=np.intp)
        source_pos = source
    count = ids.shape[0]
    candidate_pos = np.array([pos for pos in range(count)
                              if pos != source_pos], dtype=np.intp)
    if candidate_pos.size == 0:
        return []
    if hasattr(oracle, "query_matrix"):
        matrix = np.asarray(oracle.query_matrix(ids), dtype=np.float64)
        rows = matrix[candidate_pos]
    elif hasattr(oracle, "query_batch"):
        grid_t = np.tile(ids, candidate_pos.size)
        grid_s = np.repeat(ids[candidate_pos], count)
        rows = np.asarray(oracle.query_batch(grid_s, grid_t),
                          dtype=np.float64).reshape(candidate_pos.size,
                                                    count)
    else:
        return reverse_nearest_neighbors_scalar(oracle, source, num_pois,
                                                candidates=candidates)

    # Rows/columns are *positions* in the id universe, so the same
    # arithmetic covers dense and sparse id sets.
    to_source = rows[:, source_pos]
    # Third-POI distances: mask out the candidate itself and the query
    # POI, neutralise non-finite entries (they never win a strict
    # comparison), then compare the row minimum against to_source.
    others = rows.copy()
    others[np.arange(candidate_pos.size), candidate_pos] = np.inf
    others[:, source_pos] = np.inf
    others[~np.isfinite(others)] = np.inf
    closest_other = others.min(axis=1)
    qualified = np.isfinite(to_source) & (closest_other >= to_source)
    return [int(poi) for poi in ids[candidate_pos[qualified]]]


def reverse_nearest_neighbors_scalar(oracle: DistanceOracleProtocol,
                                     source: int,
                                     num_pois: Optional[int] = None,
                                     candidates: Optional[Sequence[int]]
                                     = None) -> List[int]:
    """Reference implementation of :func:`reverse_nearest_neighbors`."""
    if candidates is None and num_pois is None:
        candidates = _oracle_universe(oracle)
    if candidates is not None:
        ids = [int(poi) for poi in candidates]
    else:
        ids = list(range(_dense_count(oracle, num_pois)))
    result = []
    for candidate in ids:
        if candidate == source:
            continue
        to_source = oracle.query(candidate, source)
        if not math.isfinite(to_source):
            continue
        is_rnn = True
        for other in ids:
            if other in (candidate, source):
                continue
            distance = oracle.query(candidate, other)
            if math.isfinite(distance) and distance < to_source:
                is_rnn = False
                break
        if is_rnn:
            result.append(candidate)
    return result
