"""Proximity queries built on the distance oracle (Section 1.1 / 1.2).

The paper motivates SE as the substrate for "proximity queries such as
nearest neighbor queries, range queries and reverse nearest neighbor
queries".  This module provides those three query types over any object
exposing ``query(source, target) -> float`` (an :class:`~repro.core.
oracle.SEOracle`, a :class:`~repro.baselines.full_apsp.
FullAPSPBaseline`, or a :class:`~repro.baselines.kalgo.KAlgo`):

* :func:`k_nearest_neighbors` — kNN by geodesic distance;
* :func:`range_query` — all POIs within a geodesic radius;
* :func:`reverse_nearest_neighbors` — monochromatic RNN: POIs whose
  nearest neighbour is the query POI.

Each call costs O(n) oracle probes (O(n h) time with SE), which is the
design the paper enables: cheap probes make scan-based proximity
queries practical.
"""

from __future__ import annotations

from typing import List, Protocol, Tuple

__all__ = [
    "DistanceOracleProtocol",
    "k_nearest_neighbors",
    "range_query",
    "reverse_nearest_neighbors",
    "nearest_neighbor",
]


class DistanceOracleProtocol(Protocol):
    """Anything answering POI-to-POI distance queries."""

    def query(self, source: int, target: int) -> float: ...


def k_nearest_neighbors(oracle: DistanceOracleProtocol, source: int,
                        k: int, num_pois: int) -> List[Tuple[int, float]]:
    """The ``k`` POIs nearest to ``source`` (excluding itself).

    Returns ``(poi, distance)`` pairs sorted by distance (ties broken by
    POI index for determinism).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    candidates = [
        (oracle.query(source, target), target)
        for target in range(num_pois) if target != source
    ]
    candidates.sort()
    return [(poi, distance) for distance, poi in candidates[:k]]


def nearest_neighbor(oracle: DistanceOracleProtocol, source: int,
                     num_pois: int) -> Tuple[int, float]:
    """The single nearest POI to ``source``."""
    result = k_nearest_neighbors(oracle, source, 1, num_pois)
    if not result:
        raise ValueError("no other POI exists")
    return result[0]


def range_query(oracle: DistanceOracleProtocol, source: int,
                radius: float, num_pois: int) -> List[Tuple[int, float]]:
    """All POIs within geodesic ``radius`` of ``source`` (excl. itself)."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    hits = [
        (distance, target)
        for target in range(num_pois) if target != source
        if (distance := oracle.query(source, target)) <= radius
    ]
    hits.sort()
    return [(poi, distance) for distance, poi in hits]


def reverse_nearest_neighbors(oracle: DistanceOracleProtocol, source: int,
                              num_pois: int) -> List[int]:
    """Monochromatic RNN: POIs whose nearest neighbour is ``source``.

    Note the asymmetry with kNN: ``q`` is in ``RNN(source)`` iff no
    third POI is closer to ``q`` than ``source`` is.
    """
    result = []
    for candidate in range(num_pois):
        if candidate == source:
            continue
        to_source = oracle.query(candidate, source)
        is_rnn = True
        for other in range(num_pois):
            if other in (candidate, source):
                continue
            if oracle.query(candidate, other) < to_source:
                is_rnn = False
                break
        if is_rnn:
            result.append(candidate)
    return result
