"""Proximity queries (kNN / range / RNN) over a distance oracle.

Functions dispatch on the oracle's capabilities: one vectorised
``query_batch``/``query_matrix`` call on batched oracles (compiled SE,
full-APSP), a probe-per-pair scan on scalar ones (dynamic SE, K-Algo).
The ``*_scalar`` reference implementations are exported as the
executable specification of the result semantics.
"""

from .proximity import (
    BatchDistanceOracleProtocol,
    DistanceOracleProtocol,
    k_nearest_neighbors,
    k_nearest_neighbors_scalar,
    nearest_neighbor,
    range_query,
    range_query_scalar,
    reverse_nearest_neighbors,
    reverse_nearest_neighbors_scalar,
)

__all__ = [
    "BatchDistanceOracleProtocol",
    "DistanceOracleProtocol",
    "k_nearest_neighbors",
    "k_nearest_neighbors_scalar",
    "nearest_neighbor",
    "range_query",
    "range_query_scalar",
    "reverse_nearest_neighbors",
    "reverse_nearest_neighbors_scalar",
]
