"""Proximity queries (kNN / range / RNN) over a distance oracle."""

from .proximity import (
    DistanceOracleProtocol,
    k_nearest_neighbors,
    nearest_neighbor,
    range_query,
    reverse_nearest_neighbors,
)

__all__ = [
    "DistanceOracleProtocol",
    "k_nearest_neighbors",
    "nearest_neighbor",
    "range_query",
    "reverse_nearest_neighbors",
]
