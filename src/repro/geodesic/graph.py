"""The geodesic graph: terrain vertices + Steiner points + attached sites.

``GeodesicGraph`` is the weighted graph on which every shortest-path
computation in this repository runs.  Its nodes are:

* the mesh vertices (ids ``0 .. N-1``),
* the Steiner points (ids ``N .. N+S-1``),
* dynamically *attached sites* — POIs or arbitrary query points —
  appended after construction (ids ``N+S ..``).

Within every face, all nodes on the face boundary (3 corners plus the
Steiner points of its 3 edges) form a clique weighted by 3D Euclidean
distance; consecutive nodes along each edge are chained as well.  A
shortest path in this graph corresponds to a path on the surface that
crosses faces through boundary points, the classic ε-approximation of
the geodesic metric (see :mod:`repro.geodesic.steiner`).

Attached sites connect to every boundary node of their containing face
(and to other sites on the same face), which is how the paper's SSAD
handles POIs: "all points in P on each face expanded together with the
vertex are computed with their geodesic distances".

Graph representation (CSR + overlay)
------------------------------------
Adjacency is held twice, deliberately:

* ``self.csr`` — a :class:`~repro.datastructures.csr.CSRGraph`: the
  mesh + Steiner section frozen into flat NumPy ``indptr`` / ``indices``
  / ``weights`` arrays, plus a small dynamic overlay for sites attached
  afterwards.  This is what the Dijkstra kernel iterates, and what any
  future vectorised or sharded consumer should read.  Callers that
  attach a stable batch of sites (the engine attaching its POI set)
  call :meth:`freeze_sites` to merge the overlay into the static
  section, so build-time SSADs run entirely on frozen arrays.
* ``self.adjacency`` — the original ``(neighbors, weights)``
  list-of-lists pair, kept live as a compatibility view for
  out-of-tree callers and as the rebuild source when the CSR needs
  refreezing.  Mutations (:meth:`attach_site` /
  :meth:`detach_last_sites`) update both representations.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datastructures.csr import CSRGraph
from ..terrain.mesh import TriangleMesh
from ..terrain.poi import POISet
from .steiner import place_steiner_points

__all__ = ["GeodesicGraph"]


class GeodesicGraph:
    """Weighted graph approximating the geodesic metric of a terrain.

    Parameters
    ----------
    mesh:
        The terrain surface.
    points_per_edge:
        Steiner density; 0 gives the bare vertex graph.

    Notes
    -----
    The adjacency is stored as a frozen CSR core plus a dynamic site
    overlay (see the module docstring), with the legacy parallel-list
    form kept as a live compatibility view.  The graph never removes
    static nodes; callers that need a transient attachment (the A2A
    query path) use :meth:`attach_site` + :meth:`detach_last_sites`.
    """

    def __init__(self, mesh: TriangleMesh, points_per_edge: int = 2,
                 weight_fn: Optional[Callable] = None):
        self._mesh = mesh
        self._weight_fn = weight_fn
        self._placement = place_steiner_points(mesh, points_per_edge)
        self._num_vertices = mesh.num_vertices
        self._num_steiner = self._placement.count
        base = self._num_vertices + self._num_steiner
        self._positions: List[np.ndarray] = [
            mesh.vertices[i] for i in range(self._num_vertices)
        ]
        self._positions.extend(self._placement.positions)
        self._neighbors: List[List[int]] = [[] for _ in range(base)]
        self._weights: List[List[float]] = [[] for _ in range(base)]
        self._face_boundary: List[List[int]] = []
        self._sites_by_face: Dict[int, List[int]] = {}
        self._face_of_site: Dict[int, int] = {}
        self._num_edges = 0
        self._build()
        self._csr = CSRGraph.from_lists(self._neighbors, self._weights)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        mesh = self._mesh
        offset = self._num_vertices
        edge_nodes: Dict[Tuple[int, int], List[int]] = {}
        for edge in mesh.edges:
            chain = [edge[0]]
            chain.extend(offset + p for p in
                         self._placement.edge_points.get(edge, []))
            chain.append(edge[1])
            edge_nodes[edge] = chain

        seen: set = set()

        def add_edge(u: int, v: int) -> None:
            key = (u, v) if u < v else (v, u)
            if key in seen:
                return
            seen.add(key)
            weight = self._distance(u, v)
            if math.isinf(weight):
                return  # weight models may delete impassable edges
            self._neighbors[u].append(v)
            self._weights[u].append(weight)
            self._neighbors[v].append(u)
            self._weights[v].append(weight)
            self._num_edges += 1

        for face_id, (a, b, c) in enumerate(mesh.faces):
            boundary: List[int] = []
            for u, v in ((a, b), (b, c), (a, c)):
                key = (int(u), int(v)) if u < v else (int(v), int(u))
                boundary.extend(edge_nodes[key])
            boundary = sorted(set(boundary))
            self._face_boundary.append(boundary)
            for i, u in enumerate(boundary):
                for v in boundary[i + 1:]:
                    add_edge(u, v)

    def _distance(self, u: int, v: int) -> float:
        if self._weight_fn is not None:
            return float(self._weight_fn(self._positions[u],
                                         self._positions[v]))
        delta = self._positions[u] - self._positions[v]
        return float(math.sqrt(float(delta @ delta)))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def mesh(self) -> TriangleMesh:
        return self._mesh

    @property
    def num_nodes(self) -> int:
        return len(self._positions)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_vertices(self) -> int:
        """Terrain vertex count (node ids below this are mesh vertices)."""
        return self._num_vertices

    @property
    def num_steiner(self) -> int:
        return self._num_steiner

    @property
    def points_per_edge(self) -> int:
        return self._placement.points_per_edge

    def position(self, node: int) -> np.ndarray:
        return self._positions[node]

    def neighbors(self, node: int) -> Tuple[List[int], List[float]]:
        return self._neighbors[node], self._weights[node]

    @property
    def csr(self) -> CSRGraph:
        """The CSR core the Dijkstra kernel runs on."""
        return self._csr

    @property
    def adjacency(self) -> Tuple[List[List[int]], List[List[float]]]:
        """Legacy ``(neighbors, weights)`` compatibility view.

        Kept in sync with :attr:`csr`; the search kernels accept either
        form, but hot loops should pass :attr:`csr` (tuples are frozen
        into a temporary CSR on every call).
        """
        return self._neighbors, self._weights

    def steiner_nodes(self) -> range:
        """Node ids of the Steiner points."""
        return range(self._num_vertices, self._num_vertices + self._num_steiner)

    def face_boundary_nodes(self, face_id: int) -> List[int]:
        """Corner + Steiner nodes on the boundary of ``face_id``."""
        return self._face_boundary[face_id]

    def edge_steiner_nodes(self, u: int, v: int) -> List[int]:
        """Graph node ids of the Steiner points on mesh edge ``(u, v)``.

        Ordered from the smaller to the larger endpoint (the placement
        convention); empty when the density is 0 or the edge does not
        exist.  Used by the tiled builder to promote the Steiner points
        of a tile-cut edge to portal sites.
        """
        key = (int(u), int(v)) if u < v else (int(v), int(u))
        offset = self._num_vertices
        return [offset + p
                for p in self._placement.edge_points.get(key, [])]

    def size_bytes(self) -> int:
        """Byte-count model: 8 bytes per node coordinate triple member,
        16 per directed adjacency entry (id + weight)."""
        return 24 * self.num_nodes + 16 * 2 * self._num_edges

    # ------------------------------------------------------------------
    # site attachment
    # ------------------------------------------------------------------
    def attach_site(self, position: Sequence[float], face_id: int,
                    vertex_id: Optional[int] = None) -> int:
        """Attach a surface point as a graph node; returns its node id.

        Points coinciding with a mesh vertex reuse the vertex node (no
        new node is created).  Otherwise the new node connects to every
        boundary node of its face and to previously attached sites on
        the same face.
        """
        if vertex_id is not None:
            return int(vertex_id)
        node = len(self._positions)
        position = np.asarray(position, dtype=float)
        self._positions.append(position)
        self._neighbors.append([])
        self._weights.append([])
        targets = list(self._face_boundary[face_id])
        targets.extend(self._sites_by_face.get(face_id, []))
        for other in targets:
            weight = self._distance(node, other)
            if math.isinf(weight):
                continue
            self._neighbors[node].append(other)
            self._weights[node].append(weight)
            self._neighbors[other].append(node)
            self._weights[other].append(weight)
            self._num_edges += 1
        self._csr.attach_node(self._neighbors[node], self._weights[node])
        self._sites_by_face.setdefault(face_id, []).append(node)
        self._face_of_site[node] = face_id
        return node

    def attach_pois(self, pois: POISet) -> List[int]:
        """Attach every POI of a set; returns their node ids in order.

        The batch is assumed stable (POIs are never detached), so the
        CSR overlay is frozen afterwards — subsequent searches run
        entirely on flat arrays.
        """
        nodes = [
            self.attach_site(poi.position, poi.face_id, poi.vertex_id)
            for poi in pois
        ]
        self.freeze_sites()
        return nodes

    def freeze_sites(self) -> None:
        """Merge the CSR overlay into the frozen static section.

        Call after attaching a batch of long-lived sites; transient
        attach/detach cycles (A2A queries) still work afterwards and
        land in a fresh overlay.
        """
        if self._csr.num_overlay:
            self._csr = CSRGraph.from_lists(self._neighbors, self._weights)

    def detach_last_sites(self, count: int) -> None:
        """Remove the ``count`` most recently attached site nodes.

        Sites are removed LIFO; attempting to detach mesh/Steiner nodes
        raises.  Used by transient A2A attachments.
        """
        base = self._num_vertices + self._num_steiner
        needs_refreeze = False
        for _ in range(count):
            node = len(self._positions) - 1
            if node < base:
                raise ValueError("cannot detach non-site nodes")
            for other in self._neighbors[node]:
                index = self._neighbors[other].index(node)
                self._neighbors[other].pop(index)
                self._weights[other].pop(index)
                self._num_edges -= 1
            self._positions.pop()
            self._neighbors.pop()
            self._weights.pop()
            face_id = self._face_of_site.pop(node)
            sites = self._sites_by_face[face_id]
            sites.remove(node)
            if not sites:
                del self._sites_by_face[face_id]
            if self._csr.num_overlay:
                self._csr.detach_last()
            else:
                # Detaching a frozen site; refreeze once after the loop.
                needs_refreeze = True
        if needs_refreeze:
            self._csr = CSRGraph.from_lists(self._neighbors, self._weights)
