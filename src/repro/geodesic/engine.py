"""High-level geodesic engine: the SSAD service used by the oracle.

``GeodesicEngine`` binds a terrain mesh, a Steiner density and a POI
set into one object exposing exactly the operations the paper's
algorithms need:

* :meth:`distances_from_poi` — the two SSAD variants (cover-all /
  radius-bounded) returning geodesic distances *to POIs*;
* :meth:`distances_many` / :meth:`query_many` — batched forms of the
  above: many sources per call (build-time SSAD sweeps), or many
  point-to-point queries grouped so each distinct source runs one
  multi-target search instead of one search per pair;
* :meth:`multi_source_distances` — a single search seeded from several
  nodes at once (nearest-site style workloads);
* :meth:`distance` — a single P2P geodesic distance (ground truth for
  error measurement, and the naive construction's workhorse);
* :meth:`shortest_path` — path reconstruction for examples;
* transient attachment of arbitrary surface points (A2A queries);
* :meth:`snapshot` / :meth:`from_snapshot` — a picklable frozen-CSR
  image of the engine and its rehydration, the mechanism by which the
  parallel build executor (:mod:`repro.core.parallel`) ships the SSAD
  service to worker processes exactly once.

All searches run on the graph's frozen CSR core (the POI set is frozen
into it at construction); see :mod:`repro.geodesic.graph`.  The engine
also counts SSAD invocations, settled nodes and heap pushes, which the
benchmark harness reports as construction-effort metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..datastructures.csr import CSRGraph
from ..terrain.mesh import TriangleMesh
from ..terrain.poi import POISet
from .dijkstra import DijkstraResult, dijkstra
from .graph import GeodesicGraph

__all__ = ["GeodesicEngine", "EngineSnapshot"]


@dataclass(frozen=True)
class EngineSnapshot:
    """Picklable frozen-CSR image of a :class:`GeodesicEngine`.

    Carries exactly what the SSAD surface needs — the static CSR
    arrays and the POI -> node mapping — and nothing mesh-shaped, so
    shipping one to a worker process costs a few array pickles instead
    of a terrain rebuild.  Rehydrate with
    :meth:`GeodesicEngine.from_snapshot`.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    poi_nodes: Tuple[int, ...]
    points_per_edge: int

    def rehydrate(self) -> "GeodesicEngine":
        """Shorthand for :meth:`GeodesicEngine.from_snapshot`."""
        return GeodesicEngine.from_snapshot(self)


class _FrozenGraphView:
    """Minimal stand-in for :class:`GeodesicGraph` in worker processes.

    Exposes the two attributes the engine's SSAD surface reads — the
    CSR core and the Steiner density — and nothing geometric; workers
    never reconstruct paths or attach surface points.
    """

    __slots__ = ("csr", "points_per_edge")

    def __init__(self, csr: CSRGraph, points_per_edge: int):
        self.csr = csr
        self.points_per_edge = points_per_edge


def _single_target_distance(result: DijkstraResult, target: int) -> float:
    """Read a single-target search's answer without building the dict.

    The kernel stops immediately after settling ``single_target``, so
    when the target was reached it is the last settled node; otherwise
    the component drained without it.
    """
    ids = result.settled_ids
    if ids and ids[-1] == target:
        return result.settled_dists[-1]
    return math.inf


class GeodesicEngine:
    """Geodesic distance service over a terrain and its POI set.

    Parameters
    ----------
    mesh:
        Terrain surface.
    pois:
        The POI set ``P``; may be empty for pure vertex workloads.
    points_per_edge:
        Steiner density of the underlying graph (0 = vertex graph).
    """

    def __init__(self, mesh: TriangleMesh, pois: POISet,
                 points_per_edge: int = 2, weight_fn=None):
        self._mesh = mesh
        self._pois = pois
        self._graph = GeodesicGraph(mesh, points_per_edge,
                                    weight_fn=weight_fn)
        self._poi_nodes: List[int] = self._graph.attach_pois(pois)
        self._node_to_poi: Dict[int, int] = {}
        for poi_index, node in enumerate(self._poi_nodes):
            # A vertex node can host at most one POI after dedup.
            self._node_to_poi[node] = poi_index
        self.ssad_calls = 0
        self.settled_nodes = 0
        self.heap_pushes = 0

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def mesh(self) -> TriangleMesh:
        return self._mesh

    @property
    def pois(self) -> POISet:
        return self._pois

    @property
    def graph(self) -> GeodesicGraph:
        return self._graph

    @property
    def num_pois(self) -> int:
        # Counted on the node mapping, not the POISet: rehydrated
        # worker engines carry no POISet (see :meth:`from_snapshot`).
        return len(self._poi_nodes)

    def poi_node(self, poi_index: int) -> int:
        """Graph node id hosting POI ``poi_index``."""
        return self._poi_nodes[poi_index]

    def reset_counters(self) -> None:
        self.ssad_calls = 0
        self.settled_nodes = 0
        self.heap_pushes = 0

    def account_external(self, ssad_calls: int, settled_nodes: int,
                         heap_pushes: int) -> None:
        """Fold in search-effort counters measured out-of-process.

        The multiprocess build executor runs SSADs on rehydrated
        worker engines; their counter deltas are reported back and
        added here so construction stats match a serial build exactly.
        """
        self.ssad_calls += ssad_calls
        self.settled_nodes += settled_nodes
        self.heap_pushes += heap_pushes

    # ------------------------------------------------------------------
    # snapshot / rehydrate (parallel build support)
    # ------------------------------------------------------------------
    def snapshot(self) -> EngineSnapshot:
        """A picklable image of the frozen SSAD state.

        Requires every site to be frozen into the static CSR section
        (true after construction; transient A2A attachments must be
        detached first).  The arrays are shared, not copied — the
        snapshot is a cheap view that pickles by value.
        """
        csr = self._graph.csr
        if csr.num_overlay:
            raise RuntimeError(
                "cannot snapshot an engine with transient overlay sites; "
                "detach them first"
            )
        return EngineSnapshot(
            indptr=csr.indptr, indices=csr.indices, weights=csr.weights,
            poi_nodes=tuple(self._poi_nodes),
            points_per_edge=self._graph.points_per_edge,
        )

    @classmethod
    def from_snapshot(cls, snapshot: EngineSnapshot) -> "GeodesicEngine":
        """Rehydrate a worker-side engine from a snapshot.

        The result serves the full SSAD surface (``distances_from_poi``
        / ``distances_many`` / ``distance`` / ``query_many``) on the
        frozen CSR arrays; geometric operations (``shortest_path``,
        ``attach_point``) are unavailable because no mesh travels with
        the snapshot.
        """
        engine = cls.__new__(cls)
        engine._mesh = None
        engine._pois = None
        engine._graph = _FrozenGraphView(
            CSRGraph(snapshot.indptr, snapshot.indices, snapshot.weights),
            snapshot.points_per_edge,
        )
        engine._poi_nodes = list(snapshot.poi_nodes)
        engine._node_to_poi = {
            node: poi for poi, node in enumerate(engine._poi_nodes)
        }
        engine.ssad_calls = 0
        engine.settled_nodes = 0
        engine.heap_pushes = 0
        return engine

    # ------------------------------------------------------------------
    # SSAD variants (Implementation Detail 2)
    # ------------------------------------------------------------------
    def distances_from_poi(self, poi_index: int,
                           radius: Optional[float] = None
                           ) -> Dict[int, float]:
        """Geodesic distances from a POI to other POIs.

        With ``radius`` set this is the paper's SSAD *version 2*: the
        search stops once the frontier passes ``radius`` and only POIs
        within the radius appear in the result.  Without it this is
        *version 1*: the search runs until every POI is settled.
        """
        source = self._poi_nodes[poi_index]
        csr = self._graph.csr
        if radius is None:
            result = dijkstra(csr, source, targets=self._poi_nodes)
        else:
            result = dijkstra(csr, source, radius=radius)
        self._account(result)
        distances: Dict[int, float] = {}
        node_to_poi = self._node_to_poi
        for node, dist in zip(result.settled_ids, result.settled_dists):
            poi = node_to_poi.get(node)
            if poi is not None:
                distances[poi] = dist
        return distances

    def distances_many(self, poi_indices: Sequence[int],
                       radius: Union[None, float,
                                     Sequence[Optional[float]]] = None
                       ) -> List[Dict[int, float]]:
        """Batched :meth:`distances_from_poi` over many sources.

        ``radius`` may be a single value shared by every source or a
        per-source sequence (entries may be ``None`` for cover-all
        mode) — the form the enhanced-edge builder uses to sweep one
        partition-tree layer per call.  Currently a convenience loop
        (per-search scratch pooling already amortises the buffers);
        the batch boundary is where a vectorised or sharded bulk
        primitive slots in without touching call sites.
        """
        poi_indices = list(poi_indices)
        if radius is None or isinstance(radius, (int, float)):
            radii: List[Optional[float]] = [radius] * len(poi_indices)
        else:
            radii = list(radius)
            if len(radii) != len(poi_indices):
                raise ValueError("radius sequence must match poi_indices")
        return [self.distances_from_poi(poi, radius=r)
                for poi, r in zip(poi_indices, radii)]

    def query_many(self, pairs: Iterable[Tuple[int, int]]) -> List[float]:
        """Batched P2P distances for many ``(source, target)`` POI pairs.

        Pairs are canonicalized (the metric is symmetric) and grouped
        by source: each distinct source runs one multi-target search
        covering all of its targets, instead of one early-exit search
        per pair.  Returns distances aligned with the input order
        (``inf`` for disconnected pairs).
        """
        pairs = [(int(a), int(b)) for a, b in pairs]
        by_source: Dict[int, set] = {}
        for a, b in pairs:
            if a != b:
                low, high = (a, b) if a < b else (b, a)
                by_source.setdefault(low, set()).add(high)
        answers: Dict[Tuple[int, int], float] = {}
        csr = self._graph.csr
        for a, targets in by_source.items():
            source = self._poi_nodes[a]
            target_nodes = {self._poi_nodes[b]: b for b in targets}
            result = dijkstra(csr, source, targets=list(target_nodes))
            self._account(result)
            distances = result.distances
            for node, b in target_nodes.items():
                answers[(a, b)] = distances.get(node, math.inf)
        return [0.0 if a == b else answers[(a, b) if a < b else (b, a)]
                for a, b in pairs]

    def distances_from_node(self, node: int,
                            radius: Optional[float] = None,
                            targets: Optional[Sequence[int]] = None
                            ) -> DijkstraResult:
        """Raw node-level SSAD (used by the A2A oracle over Steiner sites)."""
        result = dijkstra(self._graph.csr, node, radius=radius,
                          targets=targets)
        self._account(result)
        return result

    def multi_source_distances(self, nodes: Sequence[int],
                               radius: Optional[float] = None
                               ) -> DijkstraResult:
        """One search seeded from several nodes at distance 0.

        Settles each reachable node at its distance to the *nearest*
        source — the bulk primitive for nearest-site assignment and
        Voronoi-style partitions.
        """
        result = dijkstra(self._graph.csr, list(nodes), radius=radius)
        self._account(result)
        return result

    def distance(self, poi_a: int, poi_b: int) -> float:
        """Geodesic distance between two POIs (early-exit search)."""
        if poi_a == poi_b:
            return 0.0
        source = self._poi_nodes[poi_a]
        target = self._poi_nodes[poi_b]
        result = dijkstra(self._graph.csr, source, single_target=target)
        self._account(result)
        return _single_target_distance(result, target)

    def shortest_path(self, poi_a: int, poi_b: int
                      ) -> Tuple[float, np.ndarray]:
        """Distance and polyline of the geodesic path between two POIs."""
        source = self._poi_nodes[poi_a]
        target = self._poi_nodes[poi_b]
        result = dijkstra(self._graph.csr, source,
                          single_target=target, return_parents=True)
        self._account(result)
        if target not in result.distances:
            return math.inf, np.zeros((0, 3))
        nodes = result.path_to(target)
        points = np.asarray([self._graph.position(n) for n in nodes])
        return result.distances[target], points

    # ------------------------------------------------------------------
    # arbitrary surface points (A2A support)
    # ------------------------------------------------------------------
    def attach_point(self, x: float, y: float) -> int:
        """Attach the surface point above planar ``(x, y)``; returns node id.

        Raises ``ValueError`` when ``(x, y)`` is outside the terrain.
        Attachments must be detached LIFO via :meth:`detach_points`.
        """
        face_id = self._mesh.locate_face(x, y)
        if face_id < 0:
            raise ValueError(f"({x}, {y}) is outside the terrain")
        weights = self._mesh.barycentric_weights(face_id, x, y)
        corners = self._mesh.vertices[self._mesh.faces[face_id]]
        position = weights @ corners
        return self._graph.attach_site(tuple(position), face_id)

    def detach_points(self, count: int) -> None:
        """Detach the ``count`` most recently attached points."""
        self._graph.detach_last_sites(count)

    def node_distance(self, node_a: int, node_b: int) -> float:
        """Geodesic distance between two raw graph nodes."""
        if node_a == node_b:
            return 0.0
        result = dijkstra(self._graph.csr, node_a,
                          single_target=node_b)
        self._account(result)
        return _single_target_distance(result, node_b)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _account(self, result: DijkstraResult) -> None:
        self.ssad_calls += 1
        self.settled_nodes += result.settled_count
        self.heap_pushes += result.heap_pushes
