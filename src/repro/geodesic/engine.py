"""High-level geodesic engine: the SSAD service used by the oracle.

``GeodesicEngine`` binds a terrain mesh, a Steiner density and a POI
set into one object exposing exactly the operations the paper's
algorithms need:

* :meth:`distances_from_poi` — the two SSAD variants (cover-all /
  radius-bounded) returning geodesic distances *to POIs*;
* :meth:`distance` — a single P2P geodesic distance (ground truth for
  error measurement, and the naive construction's workhorse);
* :meth:`shortest_path` — path reconstruction for examples;
* transient attachment of arbitrary surface points (A2A queries).

The engine also counts SSAD invocations and settled nodes, which the
benchmark harness reports as construction-effort metrics.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..terrain.mesh import TriangleMesh
from ..terrain.poi import POISet
from .dijkstra import DijkstraResult, dijkstra
from .graph import GeodesicGraph

__all__ = ["GeodesicEngine"]


class GeodesicEngine:
    """Geodesic distance service over a terrain and its POI set.

    Parameters
    ----------
    mesh:
        Terrain surface.
    pois:
        The POI set ``P``; may be empty for pure vertex workloads.
    points_per_edge:
        Steiner density of the underlying graph (0 = vertex graph).
    """

    def __init__(self, mesh: TriangleMesh, pois: POISet,
                 points_per_edge: int = 2, weight_fn=None):
        self._mesh = mesh
        self._pois = pois
        self._graph = GeodesicGraph(mesh, points_per_edge,
                                    weight_fn=weight_fn)
        self._poi_nodes: List[int] = self._graph.attach_pois(pois)
        self._node_to_poi: Dict[int, int] = {}
        for poi_index, node in enumerate(self._poi_nodes):
            # A vertex node can host at most one POI after dedup.
            self._node_to_poi[node] = poi_index
        self.ssad_calls = 0
        self.settled_nodes = 0

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def mesh(self) -> TriangleMesh:
        return self._mesh

    @property
    def pois(self) -> POISet:
        return self._pois

    @property
    def graph(self) -> GeodesicGraph:
        return self._graph

    @property
    def num_pois(self) -> int:
        return len(self._pois)

    def poi_node(self, poi_index: int) -> int:
        """Graph node id hosting POI ``poi_index``."""
        return self._poi_nodes[poi_index]

    def reset_counters(self) -> None:
        self.ssad_calls = 0
        self.settled_nodes = 0

    # ------------------------------------------------------------------
    # SSAD variants (Implementation Detail 2)
    # ------------------------------------------------------------------
    def distances_from_poi(self, poi_index: int,
                           radius: Optional[float] = None
                           ) -> Dict[int, float]:
        """Geodesic distances from a POI to other POIs.

        With ``radius`` set this is the paper's SSAD *version 2*: the
        search stops once the frontier passes ``radius`` and only POIs
        within the radius appear in the result.  Without it this is
        *version 1*: the search runs until every POI is settled.
        """
        source = self._poi_nodes[poi_index]
        if radius is None:
            result = dijkstra(self._graph.adjacency, source,
                              targets=self._poi_nodes)
        else:
            result = dijkstra(self._graph.adjacency, source, radius=radius)
        self._account(result)
        distances: Dict[int, float] = {}
        for node, dist in result.distances.items():
            poi = self._node_to_poi.get(node)
            if poi is not None:
                distances[poi] = dist
        return distances

    def distances_from_node(self, node: int,
                            radius: Optional[float] = None,
                            targets: Optional[Sequence[int]] = None
                            ) -> DijkstraResult:
        """Raw node-level SSAD (used by the A2A oracle over Steiner sites)."""
        result = dijkstra(self._graph.adjacency, node, radius=radius,
                          targets=targets)
        self._account(result)
        return result

    def distance(self, poi_a: int, poi_b: int) -> float:
        """Geodesic distance between two POIs (early-exit search)."""
        if poi_a == poi_b:
            return 0.0
        source = self._poi_nodes[poi_a]
        target = self._poi_nodes[poi_b]
        result = dijkstra(self._graph.adjacency, source,
                          single_target=target)
        self._account(result)
        return result.distances.get(target, math.inf)

    def shortest_path(self, poi_a: int, poi_b: int
                      ) -> Tuple[float, np.ndarray]:
        """Distance and polyline of the geodesic path between two POIs."""
        source = self._poi_nodes[poi_a]
        target = self._poi_nodes[poi_b]
        result = dijkstra(self._graph.adjacency, source,
                          single_target=target, return_parents=True)
        self._account(result)
        if target not in result.distances:
            return math.inf, np.zeros((0, 3))
        nodes = result.path_to(target)
        points = np.asarray([self._graph.position(n) for n in nodes])
        return result.distances[target], points

    # ------------------------------------------------------------------
    # arbitrary surface points (A2A support)
    # ------------------------------------------------------------------
    def attach_point(self, x: float, y: float) -> int:
        """Attach the surface point above planar ``(x, y)``; returns node id.

        Raises ``ValueError`` when ``(x, y)`` is outside the terrain.
        Attachments must be detached LIFO via :meth:`detach_points`.
        """
        face_id = self._mesh.locate_face(x, y)
        if face_id < 0:
            raise ValueError(f"({x}, {y}) is outside the terrain")
        weights = self._mesh.barycentric_weights(face_id, x, y)
        corners = self._mesh.vertices[self._mesh.faces[face_id]]
        position = weights @ corners
        return self._graph.attach_site(tuple(position), face_id)

    def detach_points(self, count: int) -> None:
        """Detach the ``count`` most recently attached points."""
        self._graph.detach_last_sites(count)

    def node_distance(self, node_a: int, node_b: int) -> float:
        """Geodesic distance between two raw graph nodes."""
        if node_a == node_b:
            return 0.0
        result = dijkstra(self._graph.adjacency, node_a,
                          single_target=node_b)
        self._account(result)
        return result.distances.get(node_b, math.inf)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _account(self, result: DijkstraResult) -> None:
        self.ssad_calls += 1
        self.settled_nodes += result.settled_count
