"""Steiner point placement on terrain edges.

Every algorithm in the paper ultimately runs on a graph over the
terrain: the baselines [12, 19] explicitly introduce "Steiner points"
on faces/edges and connect them into a graph ``G_eps`` whose shortest
paths ε-approximate geodesics; our substitution for the exact C++
geodesic kernels (see DESIGN.md) is Dijkstra over the same kind of
graph, densified until the approximation error is negligible relative
to the oracle's ε.

:func:`place_steiner_points` implements the *fixed placement scheme*
(Lanthier et al.): ``points_per_edge`` evenly spaced subdivision points
on every mesh edge.  The number of points per edge controls the metric
approximation quality: the weighted-graph distance is within a factor
``1 + O(1/k)`` of the true geodesic distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..terrain.mesh import TriangleMesh

__all__ = ["SteinerPlacement", "place_steiner_points"]

Edge = Tuple[int, int]


@dataclass
class SteinerPlacement:
    """Result of Steiner point placement on a mesh.

    Attributes
    ----------
    positions:
        ``(S, 3)`` coordinates of the Steiner points.
    edge_points:
        For every mesh edge ``(u, v)`` (``u < v``), the list of Steiner
        point indices placed on it, ordered from ``u`` to ``v``.
        Indices are *local* to ``positions`` (0-based); the geodesic
        graph offsets them by the mesh vertex count.
    points_per_edge:
        The placement density used.
    """

    positions: np.ndarray
    edge_points: Dict[Edge, List[int]]
    points_per_edge: int

    @property
    def count(self) -> int:
        return len(self.positions)


def place_steiner_points(mesh: TriangleMesh,
                         points_per_edge: int) -> SteinerPlacement:
    """Place ``points_per_edge`` evenly spaced Steiner points per edge.

    With ``points_per_edge == 0`` the placement is empty and the
    geodesic graph degenerates to the plain vertex graph (fastest,
    coarsest metric).
    """
    if points_per_edge < 0:
        raise ValueError("points_per_edge must be non-negative")
    edge_points: Dict[Edge, List[int]] = {}
    positions: List[np.ndarray] = []
    if points_per_edge == 0:
        return SteinerPlacement(np.zeros((0, 3)), {}, 0)
    vertices = mesh.vertices
    fractions = np.arange(1, points_per_edge + 1) / (points_per_edge + 1)
    for edge in mesh.edges:
        u, v = edge
        base = len(positions)
        start, end = vertices[u], vertices[v]
        for fraction in fractions:
            positions.append(start + fraction * (end - start))
        edge_points[edge] = list(range(base, base + points_per_edge))
    return SteinerPlacement(np.asarray(positions), edge_points,
                            points_per_edge)
