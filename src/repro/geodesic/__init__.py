"""Geodesic substrate: Steiner graphs and SSAD shortest-path search."""

from .dijkstra import (
    DijkstraResult,
    bidirectional_distance,
    dijkstra,
    dijkstra_reference,
)
from .engine import EngineSnapshot, GeodesicEngine
from .graph import GeodesicGraph
from .steiner import SteinerPlacement, place_steiner_points
from .weights import (
    ElevationGainWeight,
    SlopePenaltyWeight,
    WeightFunction,
    euclidean_weight,
)

__all__ = [
    "WeightFunction",
    "euclidean_weight",
    "SlopePenaltyWeight",
    "ElevationGainWeight",
    "DijkstraResult",
    "bidirectional_distance",
    "dijkstra",
    "dijkstra_reference",
    "EngineSnapshot",
    "GeodesicEngine",
    "GeodesicGraph",
    "SteinerPlacement",
    "place_steiner_points",
]
