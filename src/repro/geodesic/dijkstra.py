"""Best-first (Dijkstra) search kernel with the paper's stopping rules.

Section 3.2 (Implementation Detail 2) describes two SSAD variants
sharing one principle — expand the unsettled node of minimum tentative
distance — with different stopping criteria:

* **cover-targets**: stop once a given set of target nodes has been
  settled (Step 1(c): "executes until the search region ... covers all
  points in P");
* **radius**: stop once the frontier minimum exceeds a distance
  threshold (Step 2(b)(ii): "until the distance between the boundary
  of the search region and p is greater than r0/2^i").

Running with neither criterion settles the whole connected component.

This kernel is the hot path of the whole repository.  Since the CSR
refactor it runs over :class:`~repro.datastructures.csr.CSRGraph` and
dispatches between two implementations:

* a **SciPy fast path** for full-component and radius-bounded searches
  on the frozen static section — ``scipy.sparse.csgraph.dijkstra``
  over the graph's cached CSR matrix, with the exact ``frontier_min``
  of the radius rule reconstructed by one vectorised gather over the
  settled rows.  Distances are bit-identical to the reference kernel:
  both compute the same ``min`` over the same float64 path sums.
* a **pure-Python array kernel** for the cover-targets / single-target
  rules, parent tracking, overlay-touching graphs, or when SciPy is
  missing.  Tentative distances, parents and visit labels live in
  preallocated flat arrays borrowed from the graph's scratch pool and
  reset in O(1) by generation stamping, instead of the per-call dicts
  of the original kernel (kept below as :func:`dijkstra_reference` for
  equivalence tests and benchmarks).  Radius-bounded searches prune
  beyond-radius pushes at relaxation time — the lazy-deletion heap no
  longer fills with entries that could only ever be popped after the
  stopping rule fires — while still reporting the exact
  ``frontier_min`` the unpruned kernel would.

``source`` may be a sequence for multi-source searches (the frontier
starts at distance 0 from every source).  Both kernels accept a
:class:`~repro.datastructures.csr.CSRGraph`, any object exposing one
as ``.csr`` (e.g. ``GeodesicGraph``), or the legacy ``(neighbors,
weights)`` list-of-lists tuple; tuples are frozen into a temporary CSR
per call, so hot loops should pass a ``CSRGraph``.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..datastructures.csr import CSRGraph

try:  # SciPy is optional; the pure-Python kernel covers its absence.
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra
except ImportError:  # pragma: no cover - depends on environment
    _scipy_dijkstra = None

__all__ = [
    "DijkstraResult",
    "dijkstra",
    "dijkstra_reference",
    "bidirectional_distance",
]

Adjacency = Union[
    CSRGraph,
    Tuple[List[List[int]], List[List[float]]],
]


def _as_csr(graph) -> CSRGraph:
    """Coerce any accepted adjacency form into a ``CSRGraph``."""
    if isinstance(graph, CSRGraph):
        return graph
    csr = getattr(graph, "csr", None)
    if isinstance(csr, CSRGraph):
        return csr
    if isinstance(graph, tuple) and len(graph) == 2:
        return CSRGraph.from_lists(graph[0], graph[1])
    raise TypeError(
        "expected a CSRGraph, an object with a .csr attribute, or a "
        f"(neighbors, weights) tuple; got {type(graph).__name__}"
    )


class DijkstraResult:
    """Outcome of a single- or multi-source search.

    Attributes
    ----------
    distances:
        ``{node: distance}`` for every *settled* node (built lazily
        from the settled arrays on first access).
    parents:
        ``{node: predecessor}`` tree (only if requested).
    settled_count:
        Number of settled nodes (search effort measure).
    frontier_min:
        Tentative distance at which the search stopped (``inf`` if the
        frontier drained).
    heap_pushes:
        Heap insertions performed by the pure-Python kernel — the
        bookkeeping-effort measure that makes the lazy-deletion pruning
        win visible to benchmarks.  0 for the SciPy fast path, which
        keeps its frontier in C.
    settled_ids / settled_dists:
        Parallel lists of settled nodes — the raw form array consumers
        (e.g. the SP-Oracle APSP fill) read directly.  Ordering is
        unspecified (settle order for the Python kernel, node order for
        the SciPy path).
    """

    __slots__ = ("_distances", "parents", "settled_count", "frontier_min",
                 "heap_pushes", "settled_ids", "settled_dists")

    def __init__(self, distances: Optional[Dict[int, float]] = None,
                 parents: Optional[Dict[int, int]] = None,
                 settled_count: Optional[int] = None,
                 frontier_min: float = math.inf,
                 heap_pushes: int = 0,
                 settled_ids: Optional[List[int]] = None,
                 settled_dists: Optional[List[float]] = None):
        if distances is None and settled_ids is None:
            raise ValueError("need distances or settled_ids/settled_dists")
        self._distances = distances
        self.parents = parents
        if settled_ids is None:
            settled_ids = list(distances)
            settled_dists = list(distances.values())
        self.settled_ids = settled_ids
        self.settled_dists = settled_dists
        self.settled_count = (len(settled_ids) if settled_count is None
                              else settled_count)
        self.frontier_min = frontier_min
        self.heap_pushes = heap_pushes

    @property
    def distances(self) -> Dict[int, float]:
        if self._distances is None:
            self._distances = dict(zip(self.settled_ids, self.settled_dists))
        return self._distances

    def path_to(self, node: int) -> List[int]:
        """Reconstruct the node path from the source (requires parents)."""
        if self.parents is None:
            raise ValueError("search was run without return_parents")
        if node not in self.distances:
            raise KeyError(f"node {node} was not settled")
        path = [node]
        while self.parents[path[-1]] != -1:
            path.append(self.parents[path[-1]])
        path.reverse()
        return path


def dijkstra(graph: Adjacency,
             source: Union[int, Sequence[int]],
             *,
             radius: Optional[float] = None,
             targets: Optional[Sequence[int]] = None,
             single_target: Optional[int] = None,
             return_parents: bool = False) -> DijkstraResult:
    """Best-first search from ``source`` with optional stopping rules.

    Parameters
    ----------
    graph:
        A ``CSRGraph`` (or object exposing ``.csr``, or a legacy
        ``(neighbors, weights)`` tuple — converted per call).
    source:
        Start node, or a sequence of start nodes for a multi-source
        search (every source starts at distance 0).
    radius:
        Stop when the frontier minimum exceeds this value (paper's SSAD
        version 2).  Nodes beyond the radius are not settled.
    targets:
        Stop as soon as *all* of these nodes are settled (version 1).
    single_target:
        Stop as soon as this node is settled (point-to-point query).
    return_parents:
        Record the shortest-path tree for path reconstruction.
    """
    csr = _as_csr(graph)
    if hasattr(source, "__iter__"):
        sources: Tuple[int, ...] = tuple(int(s) for s in source)
        if not sources:
            raise ValueError("need at least one source")
    else:
        sources = (int(source),)

    if (_scipy_dijkstra is not None
            and targets is None and single_target is None
            and not return_parents
            and (radius is None or radius >= 0.0)):
        matrix = csr.scipy_matrix()
        if matrix is not None:
            return _dijkstra_scipy(csr, matrix, sources, radius)
    return _dijkstra_python(csr, sources, radius, targets, single_target,
                            return_parents)


def _dijkstra_scipy(csr: CSRGraph, matrix, sources: Tuple[int, ...],
                    radius: Optional[float]) -> DijkstraResult:
    """Full-component / radius-bounded search via scipy.sparse.csgraph."""
    limit = math.inf if radius is None else radius
    if len(sources) == 1:
        dist = _scipy_dijkstra(matrix, indices=sources[0], limit=limit)
    else:
        dist = _scipy_dijkstra(matrix, indices=list(sources), limit=limit,
                               min_only=True)
    finite = np.isfinite(dist)
    ids = np.flatnonzero(finite)
    frontier_min = math.inf
    if radius is not None:
        # Reconstruct the exact frontier_min of the unbounded kernel:
        # the smallest candidate distance leaving the settled region.
        indptr = csr.indptr
        starts = indptr[ids]
        counts = indptr[ids + 1] - starts
        total = int(counts.sum())
        if total:
            base = np.repeat(starts, counts)
            step = np.arange(total, dtype=np.int64) \
                - np.repeat(np.cumsum(counts) - counts, counts)
            positions = base + step
            neighbors = csr.indices[positions]
            candidates = np.repeat(dist[ids], counts) + csr.weights[positions]
            outside = ~finite[neighbors]
            if outside.any():
                frontier_min = float(candidates[outside].min())
    return DijkstraResult(settled_ids=ids.tolist(),
                          settled_dists=dist[ids].tolist(),
                          frontier_min=frontier_min)


def _dijkstra_python(csr: CSRGraph, sources: Tuple[int, ...],
                     radius: Optional[float],
                     targets: Optional[Sequence[int]],
                     single_target: Optional[int],
                     return_parents: bool) -> DijkstraResult:
    """Generation-stamped array kernel (all stopping rules, overlay)."""
    rows, static_n, ov_rows, extra = csr.kernel_view()
    scratch = csr.acquire_scratch()
    try:
        gen = scratch.next_generation()
        dist = scratch.dist
        parent = scratch.parent
        label = scratch.label
        bound = math.inf if radius is None else radius

        heap: List[Tuple[float, int]] = []
        pushes = 0
        for s in sources:
            if label[s] != gen:
                label[s] = gen
                dist[s] = 0.0
                parent[s] = -1
                heappush(heap, (0.0, s))
                pushes += 1
        pending = set(int(t) for t in targets) if targets is not None else None

        order: List[int] = []
        order_dist: List[float] = []
        frontier_min = math.inf
        # Minimum pruned (beyond-radius) candidate per node; at drain
        # time the survivors reconstruct the frontier_min the unpruned
        # kernel would have popped.
        beyond: Dict[int, float] = {}
        has_extra = bool(extra)
        broke = False
        track = return_parents
        push = heappush
        pop = heappop

        while heap:
            d, u = pop(heap)
            if d > dist[u]:
                continue  # stale lazy-deletion entry
            if d > bound:
                frontier_min = d
                broke = True
                break
            order.append(u)
            order_dist.append(d)
            if single_target is not None and u == single_target:
                frontier_min = d
                broke = True
                break
            if pending is not None:
                pending.discard(u)
                if not pending:
                    frontier_min = d
                    broke = True
                    break
            if u < static_n:
                row = rows[u]
                if has_extra:
                    pair = extra.get(u)
                    if pair is not None:
                        row = row + pair
            else:
                row = ov_rows[u - static_n]
            for v, w in row:
                c = d + w
                if label[v] == gen and c >= dist[v]:
                    continue  # settled, or no improvement
                if c > bound:
                    b = beyond.get(v)
                    if b is None or c < b:
                        beyond[v] = c
                    continue
                dist[v] = c
                label[v] = gen
                push(heap, (c, v))
                pushes += 1
                if track:
                    parent[v] = u

        if not broke and beyond:
            # A node pushed within the bound is settled once the heap
            # drains, so label[v] == gen marks settledness here.
            frontier_min = min(
                (c for v, c in beyond.items() if label[v] != gen),
                default=math.inf,
            )

        parents: Optional[Dict[int, int]] = None
        if return_parents:
            parents = {u: parent[u] for u in order}
        return DijkstraResult(parents=parents,
                              settled_count=len(order),
                              frontier_min=frontier_min,
                              heap_pushes=pushes,
                              settled_ids=order,
                              settled_dists=order_dist)
    finally:
        csr.release_scratch(scratch)


def dijkstra_reference(adjacency: Tuple[List[List[int]], List[List[float]]],
                       source: int,
                       *,
                       radius: Optional[float] = None,
                       targets: Optional[Sequence[int]] = None,
                       single_target: Optional[int] = None,
                       return_parents: bool = False) -> DijkstraResult:
    """The original dict-based kernel, kept as the equivalence baseline.

    Semantics are identical to :func:`dijkstra`; the implementation is
    the seed repository's, with per-call ``{node: distance}`` dicts and
    an unpruned lazy-deletion heap.  Property tests assert the array
    kernel reproduces its distance maps bit-for-bit; the micro
    benchmark reports the settled-nodes/second ratio between the two.
    """
    neighbors, weights = adjacency
    distances: Dict[int, float] = {}
    parents: Optional[Dict[int, int]] = {source: -1} if return_parents else None
    pending = set(targets) if targets is not None else set()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    best: Dict[int, float] = {source: 0.0}
    frontier_min = math.inf
    pushes = 1

    while heap:
        dist, node = heappop(heap)
        if node in distances:
            continue
        if radius is not None and dist > radius:
            frontier_min = dist
            break
        distances[node] = dist
        if single_target is not None and node == single_target:
            frontier_min = dist
            break
        if targets is not None:
            pending.discard(node)
            if not pending:
                frontier_min = dist
                break
        node_neighbors = neighbors[node]
        node_weights = weights[node]
        for index in range(len(node_neighbors)):
            neighbor = node_neighbors[index]
            if neighbor in distances:
                continue
            candidate = dist + node_weights[index]
            previous = best.get(neighbor)
            if previous is None or candidate < previous:
                best[neighbor] = candidate
                heappush(heap, (candidate, neighbor))
                pushes += 1
                if parents is not None:
                    parents[neighbor] = node

    if parents is not None:
        parents = {node: parents[node] for node in distances}
    return DijkstraResult(distances=distances, parents=parents,
                          settled_count=len(distances),
                          frontier_min=frontier_min,
                          heap_pushes=pushes)


def bidirectional_distance(graph: Adjacency, source: int,
                           target: int) -> float:
    """Point-to-point distance via bidirectional Dijkstra.

    Roughly halves the settled-node count of a unidirectional search on
    terrain graphs; used by the on-the-fly K-Algo baseline.  Returns
    ``inf`` when the nodes are disconnected.  Runs on the same CSR +
    scratch-pool machinery as :func:`dijkstra` (borrowing one scratch
    buffer per direction).
    """
    if source == target:
        return 0.0
    csr = _as_csr(graph)
    rows, static_n, ov_rows, extra = csr.kernel_view()
    forward = csr.acquire_scratch()
    backward = csr.acquire_scratch()
    try:
        scratches = (forward, backward)
        gens = (forward.next_generation(), backward.next_generation())
        heaps: Tuple[List[Tuple[float, int]], List[Tuple[float, int]]] = (
            [(0.0, source)], [(0.0, target)]
        )
        for side, start in ((0, source), (1, target)):
            scratches[side].dist[start] = 0.0
            scratches[side].label[start] = gens[side]
        best = math.inf
        has_extra = bool(extra)

        while heaps[0] and heaps[1]:
            side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
            this = scratches[side]
            other = scratches[1 - side]
            this_gen = gens[side]
            other_gen = gens[1 - side]
            d, u = heappop(heaps[side])
            if this.settled[u] == this_gen:
                continue
            this.settled[u] = this_gen
            if other.settled[u] == other_gen:
                return best
            if d > best:
                return best
            if u < static_n:
                row = rows[u]
                if has_extra:
                    pair = extra.get(u)
                    if pair is not None:
                        row = row + pair
            else:
                row = ov_rows[u - static_n]
            heap = heaps[side]
            this_dist = this.dist
            this_label = this.label
            other_dist = other.dist
            other_label = other.label
            for v, w in row:
                c = d + w
                if this_label[v] != this_gen or c < this_dist[v]:
                    this_dist[v] = c
                    this_label[v] = this_gen
                    heappush(heap, (c, v))
                    if other_label[v] == other_gen:
                        through = c + other_dist[v]
                        if through < best:
                            best = through
        return best
    finally:
        csr.release_scratch(backward)
        csr.release_scratch(forward)
