"""Best-first (Dijkstra) search kernel with the paper's stopping rules.

Section 3.2 (Implementation Detail 2) describes two SSAD variants
sharing one principle — expand the unsettled node of minimum tentative
distance — with different stopping criteria:

* **cover-targets**: stop once a given set of target nodes has been
  settled (Step 1(c): "executes until the search region ... covers all
  points in P");
* **radius**: stop once the frontier minimum exceeds a distance
  threshold (Step 2(b)(ii): "until the distance between the boundary
  of the search region and p is greater than r0/2^i").

Running with neither criterion settles the whole connected component.
This kernel is the hot path of the whole repository; it uses the
standard lazy-deletion binary-heap formulation for speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["DijkstraResult", "dijkstra", "bidirectional_distance"]


@dataclass
class DijkstraResult:
    """Outcome of a single-source search.

    Attributes
    ----------
    distances:
        ``{node: distance}`` for every *settled* node.
    parents:
        ``{node: predecessor}`` tree (only if requested).
    settled_count:
        Number of settled nodes (search effort measure).
    frontier_min:
        Tentative distance at which the search stopped (``inf`` if the
        frontier drained).
    """

    distances: Dict[int, float]
    parents: Optional[Dict[int, int]]
    settled_count: int
    frontier_min: float

    def path_to(self, node: int) -> List[int]:
        """Reconstruct the node path from the source (requires parents)."""
        if self.parents is None:
            raise ValueError("search was run without return_parents")
        if node not in self.distances:
            raise KeyError(f"node {node} was not settled")
        path = [node]
        while self.parents[path[-1]] != -1:
            path.append(self.parents[path[-1]])
        path.reverse()
        return path


def dijkstra(adjacency: Tuple[List[List[int]], List[List[float]]],
             source: int,
             *,
             radius: Optional[float] = None,
             targets: Optional[Sequence[int]] = None,
             single_target: Optional[int] = None,
             return_parents: bool = False) -> DijkstraResult:
    """Best-first search from ``source`` with optional stopping rules.

    Parameters
    ----------
    adjacency:
        ``(neighbors, weights)`` parallel adjacency lists.
    source:
        Start node.
    radius:
        Stop when the frontier minimum exceeds this value (paper's SSAD
        version 2).  Nodes beyond the radius are not settled.
    targets:
        Stop as soon as *all* of these nodes are settled (version 1).
    single_target:
        Stop as soon as this node is settled (point-to-point query).
    return_parents:
        Record the shortest-path tree for path reconstruction.
    """
    neighbors, weights = adjacency
    distances: Dict[int, float] = {}
    parents: Optional[Dict[int, int]] = {source: -1} if return_parents else None
    pending: Set[int] = set(targets) if targets is not None else set()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    best: Dict[int, float] = {source: 0.0}
    frontier_min = math.inf

    while heap:
        dist, node = heappop(heap)
        if node in distances:
            continue
        if radius is not None and dist > radius:
            frontier_min = dist
            break
        distances[node] = dist
        if single_target is not None and node == single_target:
            frontier_min = dist
            break
        if targets is not None:
            pending.discard(node)
            if not pending:
                frontier_min = dist
                break
        node_neighbors = neighbors[node]
        node_weights = weights[node]
        for index in range(len(node_neighbors)):
            neighbor = node_neighbors[index]
            if neighbor in distances:
                continue
            candidate = dist + node_weights[index]
            previous = best.get(neighbor)
            if previous is None or candidate < previous:
                best[neighbor] = candidate
                heappush(heap, (candidate, neighbor))
                if parents is not None:
                    parents[neighbor] = node

    if parents is not None:
        parents = {node: parents[node] for node in distances}
    return DijkstraResult(distances=distances, parents=parents,
                          settled_count=len(distances),
                          frontier_min=frontier_min)


def bidirectional_distance(
        adjacency: Tuple[List[List[int]], List[List[float]]],
        source: int, target: int) -> float:
    """Point-to-point distance via bidirectional Dijkstra.

    Roughly halves the settled-node count of a unidirectional search on
    terrain graphs; used by the on-the-fly K-Algo baseline.  Returns
    ``inf`` when the nodes are disconnected.
    """
    if source == target:
        return 0.0
    neighbors, weights = adjacency
    dist = ({source: 0.0}, {target: 0.0})
    settled: Tuple[Set[int], Set[int]] = (set(), set())
    heaps: Tuple[List[Tuple[float, int]], List[Tuple[float, int]]] = (
        [(0.0, source)], [(0.0, target)]
    )
    best = math.inf

    while heaps[0] and heaps[1]:
        side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
        d, node = heappop(heaps[side])
        if node in settled[side]:
            continue
        settled[side].add(node)
        if node in settled[1 - side]:
            return best
        if d > best:
            return best
        node_neighbors = neighbors[node]
        node_weights = weights[node]
        this_dist = dist[side]
        other_dist = dist[1 - side]
        for index in range(len(node_neighbors)):
            neighbor = node_neighbors[index]
            candidate = d + node_weights[index]
            if candidate < this_dist.get(neighbor, math.inf):
                this_dist[neighbor] = candidate
                heappush(heaps[side], (candidate, neighbor))
                through = candidate + other_dist.get(neighbor, math.inf)
                if through < best:
                    best = through
    return best
