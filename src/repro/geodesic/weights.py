"""Edge-cost models for the geodesic graph.

The default metric weighs every graph edge by 3D Euclidean length (the
geodesic setting of the paper).  Related work the paper builds on
treats *weighted* polyhedral surfaces — Aleksandrov et al. [2, 3]
study weighted faces, and Liu & Wong [24] compute paths under slope
constraints.  This module provides pluggable cost models so the whole
stack (engine, SE oracle, baselines) runs unchanged on such metrics:

* :func:`euclidean_weight` — plain length (the paper's setting);
* :class:`SlopePenaltyWeight` — length scaled by a slope-dependent
  factor, with a hard cutoff beyond a maximum traversable slope
  (edges steeper than that are removed from the graph);
* :class:`ElevationGainWeight` — length plus a per-metre-of-ascent
  charge (an asymmetric-cost surrogate made symmetric by charging
  ascent in either direction, keeping the metric a metric).

A weight function maps two 3D endpoints to a non-negative cost, or
``math.inf`` to delete the edge.  Costs must be symmetric and satisfy
``cost >= length`` is *not* required — but the SE oracle's guarantee
is relative to whatever metric the graph defines.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

__all__ = ["WeightFunction", "euclidean_weight", "SlopePenaltyWeight",
           "ElevationGainWeight"]

WeightFunction = Callable[[np.ndarray, np.ndarray], float]


def euclidean_weight(a: np.ndarray, b: np.ndarray) -> float:
    """3D Euclidean length — the paper's geodesic metric."""
    delta = a - b
    return float(math.sqrt(float(delta @ delta)))


class SlopePenaltyWeight:
    """Length multiplied by a slope penalty, with a hard slope cutoff.

    The penalty is ``1 + penalty * (slope / max_slope)`` for slopes
    below ``max_slope`` (in degrees) and ``inf`` above it, mirroring
    the slope-constrained paths of [24]: steep segments cost more and
    impassable ones disappear.

    Example
    -------
    >>> weight = SlopePenaltyWeight(max_slope_deg=30.0, penalty=1.0)
    >>> flat = weight(np.zeros(3), np.array([1.0, 0.0, 0.0]))
    >>> steep = weight(np.zeros(3), np.array([0.1, 0.0, 1.0]))
    >>> math.isinf(steep)
    True
    """

    def __init__(self, max_slope_deg: float = 45.0, penalty: float = 1.0):
        if not 0.0 < max_slope_deg <= 90.0:
            raise ValueError("max_slope_deg must be in (0, 90]")
        if penalty < 0.0:
            raise ValueError("penalty must be non-negative")
        self.max_slope_deg = max_slope_deg
        self.penalty = penalty

    def __call__(self, a: np.ndarray, b: np.ndarray) -> float:
        length = euclidean_weight(a, b)
        if length == 0.0:
            return 0.0
        horizontal = math.hypot(float(a[0] - b[0]), float(a[1] - b[1]))
        rise = abs(float(a[2] - b[2]))
        slope_deg = math.degrees(math.atan2(rise, max(horizontal, 1e-12)))
        if slope_deg > self.max_slope_deg:
            return math.inf
        return length * (1.0 + self.penalty * slope_deg / self.max_slope_deg)


class ElevationGainWeight:
    """Length plus a symmetric charge per metre of elevation change.

    ``cost = length + gain_cost * |dz|``: hiking-time style costs where
    vertical metres are worth ``gain_cost`` horizontal ones.  Charging
    ``|dz|`` (not just ascent) keeps the weight symmetric, so shortest
    paths still form a metric and the oracle's machinery applies.
    """

    def __init__(self, gain_cost: float = 7.92):
        # 7.92 = Naismith's rule: 1h/600m climb at 4.75km/h walking.
        if gain_cost < 0.0:
            raise ValueError("gain_cost must be non-negative")
        self.gain_cost = gain_cost

    def __call__(self, a: np.ndarray, b: np.ndarray) -> float:
        return (euclidean_weight(a, b)
                + self.gain_cost * abs(float(a[2] - b[2])))
