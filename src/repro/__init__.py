"""repro — a reproduction of "Distance Oracle on Terrain Surface".

Wei, Wong, Long & Mount, SIGMOD 2017 (DOI 10.1145/3035918.3064038).

The package implements the SE (Space-Efficient) ε-approximate geodesic
distance oracle over points-of-interest on a triangulated terrain,
every substrate it depends on, and every baseline it is evaluated
against.  The most common entry points:

>>> from repro import make_terrain, sample_uniform, GeodesicEngine, SEOracle
>>> mesh = make_terrain(grid_exponent=4, seed=1)
>>> pois = sample_uniform(mesh, 30, seed=2)
>>> oracle = SEOracle(GeodesicEngine(mesh, pois), epsilon=0.1).build()
>>> distance = oracle.query(0, 17)   # eps-approximate geodesic distance

See README.md for the architecture overview and DESIGN.md for the full
system inventory and per-experiment index.
"""

from .baselines import FullAPSPBaseline, KAlgo, SPOracle
from .core import A2AOracle, DynamicSEOracle, SEOracle
from .geodesic import GeodesicEngine, GeodesicGraph
from .queries import (
    k_nearest_neighbors,
    nearest_neighbor,
    range_query,
    reverse_nearest_neighbors,
)
from .terrain import (
    POISet,
    TriangleMesh,
    make_terrain,
    pois_from_vertices,
    read_mesh,
    sample_clustered,
    sample_uniform,
    write_mesh,
)

__version__ = "1.0.0"

__all__ = [
    "SEOracle",
    "A2AOracle",
    "DynamicSEOracle",
    "GeodesicEngine",
    "GeodesicGraph",
    "SPOracle",
    "KAlgo",
    "FullAPSPBaseline",
    "TriangleMesh",
    "POISet",
    "make_terrain",
    "sample_uniform",
    "sample_clustered",
    "pois_from_vertices",
    "read_mesh",
    "write_mesh",
    "k_nearest_neighbors",
    "nearest_neighbor",
    "range_query",
    "reverse_nearest_neighbors",
    "__version__",
]
