"""Synthetic terrain generation.

The paper evaluates on real DEM datasets (BearHead, EaglePeak, San
Francisco South from geocomm).  Those rasters are not redistributable,
so this module builds statistically similar triangulated terrains:

* :func:`diamond_square` — classic fractal heightfield (plasma
  terrain), giving the self-similar roughness of natural relief;
* :func:`gaussian_hills` — smooth mountain/valley mixtures;
* :func:`heightfield_to_mesh` — regular-grid triangulation (two
  triangles per raster cell), matching how DEMs become TINs;
* :func:`make_terrain` — the one-stop constructor used by the dataset
  registry (fractal relief + hills, scaled to a target extent);
* :func:`refine_centroid` — the paper's "enlarged BH" construction:
  add a vertex at the geometric centre of every face plus three edges;
* :func:`simplify_grid` — vertex-clustering simplification used for
  the ``N``-sweep of Figure 10 (the paper uses [24]'s simplifier; any
  area-preserving decimation exercises the same code path).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .mesh import TriangleMesh

__all__ = [
    "diamond_square",
    "gaussian_hills",
    "heightfield_to_mesh",
    "make_terrain",
    "refine_centroid",
    "simplify_grid",
]


def diamond_square(exponent: int, roughness: float = 0.5,
                   seed: int = 0) -> np.ndarray:
    """Generate a ``(2**exponent + 1)`` square fractal heightfield.

    Parameters
    ----------
    exponent:
        Grid size is ``2**exponent + 1`` per side.
    roughness:
        Amplitude decay per subdivision in ``(0, 1]``; higher is rougher.
    seed:
        RNG seed; the output is deterministic given the seed.

    Returns
    -------
    Heights in an unnormalised scale, shape ``(size, size)``.
    """
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    if not 0.0 < roughness <= 1.0:
        raise ValueError("roughness must be in (0, 1]")
    rng = np.random.default_rng(seed)
    size = (1 << exponent) + 1
    grid = np.zeros((size, size))
    grid[0, 0], grid[0, -1], grid[-1, 0], grid[-1, -1] = rng.normal(0, 1, 4)

    step = size - 1
    amplitude = 1.0
    while step > 1:
        half = step // 2
        # Diamond step: centres of squares.
        for i in range(half, size, step):
            for j in range(half, size, step):
                corners = (grid[i - half, j - half] + grid[i - half, j + half]
                           + grid[i + half, j - half] + grid[i + half, j + half])
                grid[i, j] = corners / 4.0 + rng.normal(0, amplitude)
        # Square step: edge midpoints.
        for i in range(0, size, half):
            start = half if (i // half) % 2 == 0 else 0
            for j in range(start, size, step):
                total = 0.0
                count = 0
                for di, dj in ((-half, 0), (half, 0), (0, -half), (0, half)):
                    ni, nj = i + di, j + dj
                    if 0 <= ni < size and 0 <= nj < size:
                        total += grid[ni, nj]
                        count += 1
                grid[i, j] = total / count + rng.normal(0, amplitude)
        step = half
        amplitude *= roughness
    return grid


def gaussian_hills(size: int, num_hills: int = 6, seed: int = 0,
                   width_range: Tuple[float, float] = (0.08, 0.25)) -> np.ndarray:
    """A ``(size, size)`` heightfield of random Gaussian bumps.

    Hill centres are uniform in the unit square; widths are relative to
    the grid extent; signs alternate to create valleys as well.
    """
    if size < 2:
        raise ValueError("size must be >= 2")
    rng = np.random.default_rng(seed)
    xs = np.linspace(0.0, 1.0, size)
    grid_x, grid_y = np.meshgrid(xs, xs, indexing="ij")
    heights = np.zeros((size, size))
    for hill in range(num_hills):
        cx, cy = rng.uniform(0.1, 0.9, 2)
        width = rng.uniform(*width_range)
        magnitude = rng.uniform(0.4, 1.0) * (1 if hill % 2 == 0 else -0.6)
        heights += magnitude * np.exp(
            -((grid_x - cx) ** 2 + (grid_y - cy) ** 2) / (2 * width**2)
        )
    return heights


def heightfield_to_mesh(heights: np.ndarray,
                        extent_x: float,
                        extent_y: float,
                        z_scale: float = 1.0) -> TriangleMesh:
    """Triangulate a raster heightfield into a TIN.

    Each raster cell becomes two triangles, the standard DEM-to-TIN
    conversion.  Vertex ``(i, j)`` sits at planar position
    ``(i * dx, j * dy)`` with height ``heights[i, j] * z_scale``.
    """
    heights = np.asarray(heights, dtype=float)
    if heights.ndim != 2 or heights.shape[0] < 2 or heights.shape[1] < 2:
        raise ValueError(f"heights must be a 2D grid, got {heights.shape}")
    rows, cols = heights.shape
    dx = extent_x / (rows - 1)
    dy = extent_y / (cols - 1)
    ii, jj = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    vertices = np.column_stack([
        (ii * dx).ravel(), (jj * dy).ravel(), (heights * z_scale).ravel()
    ])

    def vid(i, j):
        return i * cols + j

    faces = []
    for i in range(rows - 1):
        for j in range(cols - 1):
            a, b = vid(i, j), vid(i + 1, j)
            c, d = vid(i + 1, j + 1), vid(i, j + 1)
            # Alternate the diagonal to avoid directional artefacts.
            if (i + j) % 2 == 0:
                faces.append((a, b, c))
                faces.append((a, c, d))
            else:
                faces.append((a, b, d))
                faces.append((b, c, d))
    return TriangleMesh(vertices, np.asarray(faces, dtype=np.int64))


def make_terrain(grid_exponent: int = 5,
                 extent: Tuple[float, float] = (14_000.0, 10_000.0),
                 relief: float = 900.0,
                 roughness: float = 0.55,
                 hill_fraction: float = 0.5,
                 seed: int = 0) -> TriangleMesh:
    """Build a BH/EP/SF-style synthetic terrain.

    Combines a diamond-square fractal with Gaussian hills, normalises to
    ``[0, 1]`` and scales to ``relief`` metres of vertical range over
    the requested planar ``extent``.  This is the generator behind the
    dataset registry in :mod:`repro.experiments.datasets`.
    """
    fractal = diamond_square(grid_exponent, roughness=roughness, seed=seed)
    size = fractal.shape[0]
    hills = gaussian_hills(size, num_hills=5, seed=seed + 1)

    def normalise(grid: np.ndarray) -> np.ndarray:
        span = grid.max() - grid.min()
        if span < 1e-12:
            return np.zeros_like(grid)
        return (grid - grid.min()) / span

    heights = ((1.0 - hill_fraction) * normalise(fractal)
               + hill_fraction * normalise(hills))
    return heightfield_to_mesh(heights * relief, extent[0], extent[1])


def refine_centroid(mesh: TriangleMesh) -> TriangleMesh:
    """Subdivide every face at its geometric centre (1 face -> 3 faces).

    This is the paper's enlargement recipe for the Figure 10 N-sweep:
    "On each face of BH, we added a new vertex on its geometric center
    and add a new edge between the new vertex and each of the three
    vertices on the face."
    """
    old_count = mesh.num_vertices
    centroids = mesh.vertices[mesh.faces].mean(axis=1)
    vertices = np.vstack([mesh.vertices, centroids])
    faces = []
    for face_id, (a, b, c) in enumerate(mesh.faces):
        center = old_count + face_id
        faces.append((a, b, center))
        faces.append((b, c, center))
        faces.append((c, a, center))
    return TriangleMesh(vertices, np.asarray(faces, dtype=np.int64))


def simplify_grid(mesh: TriangleMesh, target_vertices: int,
                  seed: int = 0) -> TriangleMesh:
    """Vertex-clustering simplification down to ~``target_vertices``.

    Snap vertices to a uniform planar grid sized so that roughly
    ``target_vertices`` clusters are occupied; each cluster is replaced
    by its average vertex and faces are re-indexed, dropping collapsed
    (degenerate) triangles.  The simplified surface covers the same
    region as the original, the property the Figure 10 sweep relies on.
    """
    if target_vertices < 4:
        raise ValueError("target_vertices must be at least 4")
    if target_vertices >= mesh.num_vertices:
        return mesh
    low, high = mesh.bounding_box()
    width = max(high[0] - low[0], 1e-12)
    height = max(high[1] - low[1], 1e-12)
    # Occupied-cell count tracks cells along each axis; aim slightly high
    # and shrink until under target.
    cells = max(2, int(math.sqrt(target_vertices)))
    for _ in range(32):
        cluster_of = _assign_clusters(mesh.vertices, low, width, height, cells)
        unique = len(set(cluster_of))
        if unique <= target_vertices:
            break
        cells = max(2, int(cells * math.sqrt(target_vertices / unique)))
        if cells == 2:
            break
        cells -= 1
    cluster_of = _assign_clusters(mesh.vertices, low, width, height, cells)

    order: dict = {}
    for cluster in cluster_of:
        if cluster not in order:
            order[cluster] = len(order)
    new_ids = np.array([order[cluster] for cluster in cluster_of])
    new_vertices = np.zeros((len(order), 3))
    counts = np.zeros(len(order))
    np.add.at(new_vertices, new_ids, mesh.vertices)
    np.add.at(counts, new_ids, 1.0)
    new_vertices /= counts[:, None]

    remapped = new_ids[mesh.faces]
    keep = (
        (remapped[:, 0] != remapped[:, 1])
        & (remapped[:, 1] != remapped[:, 2])
        & (remapped[:, 0] != remapped[:, 2])
    )
    new_faces = remapped[keep]
    # Drop duplicate faces (same vertex set) that clustering can create.
    seen = set()
    unique_faces = []
    for face in new_faces:
        key = tuple(sorted(int(v) for v in face))
        if key not in seen:
            seen.add(key)
            unique_faces.append(face)
    return TriangleMesh(new_vertices, np.asarray(unique_faces, dtype=np.int64))


def _assign_clusters(vertices: np.ndarray, low: np.ndarray,
                     width: float, height: float, cells: int) -> list:
    cell_x = np.minimum(((vertices[:, 0] - low[0]) / width * cells).astype(int),
                        cells - 1)
    cell_y = np.minimum(((vertices[:, 1] - low[1]) / height * cells).astype(int),
                        cells - 1)
    return list(zip(cell_x.tolist(), cell_y.tolist()))
