"""Points-of-interest (POIs) on a terrain surface.

The paper's problem setting (Section 2): a set ``P`` of ``n`` POIs on
the surface of the terrain, each with 3D coordinates.  POIs are not
necessarily mesh vertices — they live on faces.  This module provides:

* :class:`POI` / :class:`POISet` — positions plus containing-face /
  vertex bookkeeping (what the geodesic engine needs to attach them);
* :func:`sample_uniform` — area-weighted uniform sampling on the
  surface (our substitute for OpenStreetMap POI extraction);
* :func:`sample_clustered` — the paper's own POI-upsampling recipe
  from Section 5.2.1: draw planar points from a Normal distribution
  fitted to existing POIs, reject points outside the terrain, project
  the rest onto the surface;
* :func:`pois_from_vertices` — the V2V setting ("the original POIs are
  discarded, and we treat all vertices as POIs").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .mesh import TriangleMesh

__all__ = [
    "POI",
    "POISet",
    "sample_uniform",
    "sample_clustered",
    "pois_from_vertices",
    "random_surface_point",
]


@dataclass(frozen=True)
class POI:
    """A point-of-interest on the terrain surface.

    Attributes
    ----------
    index:
        Position of the POI within its :class:`POISet` (0..n-1).
    position:
        3D coordinates on the surface.
    face_id:
        A face containing the POI (any incident face if on an edge or
        vertex).
    vertex_id:
        The mesh vertex the POI coincides with, or ``None``.
    """

    index: int
    position: Tuple[float, float, float]
    face_id: int
    vertex_id: Optional[int] = None

    @property
    def x(self) -> float:
        return self.position[0]

    @property
    def y(self) -> float:
        return self.position[1]

    @property
    def z(self) -> float:
        return self.position[2]

    def as_array(self) -> np.ndarray:
        return np.asarray(self.position)


class POISet:
    """An ordered collection of POIs with de-duplication.

    The paper assumes ``P`` contains no duplicate points (co-located
    POIs are merged in "a simple preprocessing step"); the constructor
    applies that merge.
    """

    def __init__(self, pois: Sequence[POI]):
        deduped: List[POI] = []
        seen = set()
        for poi in pois:
            key = tuple(round(coordinate, 9) for coordinate in poi.position)
            if key in seen:
                continue
            seen.add(key)
            deduped.append(POI(index=len(deduped), position=poi.position,
                               face_id=poi.face_id, vertex_id=poi.vertex_id))
        self._pois = deduped
        self._positions = (np.asarray([p.position for p in deduped])
                           if deduped else np.zeros((0, 3)))

    def __len__(self) -> int:
        return len(self._pois)

    def __iter__(self) -> Iterator[POI]:
        return iter(self._pois)

    def __getitem__(self, index: int) -> POI:
        return self._pois[index]

    @property
    def positions(self) -> np.ndarray:
        """``(n, 3)`` array of POI coordinates."""
        return self._positions

    def xy(self) -> np.ndarray:
        """``(n, 2)`` planar coordinates (greedy-grid input)."""
        return self._positions[:, :2]

    def all_on_vertices(self) -> bool:
        """True when every POI coincides with a mesh vertex (V2V mode)."""
        return all(poi.vertex_id is not None for poi in self._pois)

    def subset(self, indices: Sequence[int]) -> "POISet":
        """A new POISet containing the selected POIs (re-indexed)."""
        return POISet([self._pois[i] for i in indices])


def pois_from_vertices(mesh: TriangleMesh,
                       vertex_ids: Optional[Sequence[int]] = None) -> POISet:
    """Treat mesh vertices as POIs (the V2V query setting)."""
    if vertex_ids is None:
        vertex_ids = range(mesh.num_vertices)
    vertex_faces = mesh.vertex_faces
    pois = []
    for index, vertex_id in enumerate(vertex_ids):
        incident = vertex_faces[vertex_id]
        if not incident:
            raise ValueError(f"vertex {vertex_id} belongs to no face")
        position = tuple(float(c) for c in mesh.vertices[vertex_id])
        pois.append(POI(index=index, position=position,
                        face_id=incident[0], vertex_id=int(vertex_id)))
    return POISet(pois)


def random_surface_point(mesh: TriangleMesh, rng: np.random.Generator,
                         face_areas: Optional[np.ndarray] = None
                         ) -> Tuple[Tuple[float, float, float], int]:
    """Uniform random point on the surface; returns (position, face_id)."""
    if face_areas is None:
        face_areas = mesh.face_areas()
    probabilities = face_areas / face_areas.sum()
    face_id = int(rng.choice(len(face_areas), p=probabilities))
    # Uniform barycentric sample on the chosen triangle.
    r1, r2 = rng.random(), rng.random()
    sqrt_r1 = math.sqrt(r1)
    w = (1 - sqrt_r1, sqrt_r1 * (1 - r2), sqrt_r1 * r2)
    corners = mesh.vertices[mesh.faces[face_id]]
    position = w[0] * corners[0] + w[1] * corners[1] + w[2] * corners[2]
    return tuple(float(c) for c in position), face_id


def sample_uniform(mesh: TriangleMesh, count: int, seed: int = 0) -> POISet:
    """Sample ``count`` POIs uniformly (by area) on the surface."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = np.random.default_rng(seed)
    areas = mesh.face_areas()
    pois = []
    for index in range(count):
        position, face_id = random_surface_point(mesh, rng, areas)
        pois.append(POI(index=index, position=position, face_id=face_id))
    return POISet(pois)


def sample_clustered(mesh: TriangleMesh, count: int, seed: int = 0,
                     existing: Optional[POISet] = None,
                     max_rejects: int = 100_000) -> POISet:
    """Sample POIs with the paper's Normal-projection recipe.

    Section 5.2.1: fit a Normal distribution ``N(mu, sigma^2)`` per
    planar axis to the existing POIs (or to the terrain extent when no
    POIs are given), draw 2D points, discard points outside the terrain
    and project the survivors onto the surface.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = np.random.default_rng(seed)
    low, high = mesh.bounding_box()
    if existing is not None and len(existing) > 1:
        xy = existing.xy()
        mean = xy.mean(axis=0)
        std = xy.std(axis=0)
        std = np.where(std < 1e-9, (high[:2] - low[:2]) / 6.0, std)
    else:
        mean = (low[:2] + high[:2]) / 2.0
        std = (high[:2] - low[:2]) / 4.0

    pois: List[POI] = list(existing) if existing is not None else []
    start = len(pois)
    rejects = 0
    while len(pois) < start + count:
        x, y = rng.normal(mean, std)
        face_id = mesh.locate_face(float(x), float(y))
        if face_id < 0:
            rejects += 1
            if rejects > max_rejects:
                raise RuntimeError(
                    "too many rejected samples; terrain coverage too sparse"
                )
            continue
        weights = mesh.barycentric_weights(face_id, float(x), float(y))
        corners = mesh.vertices[mesh.faces[face_id]]
        position = tuple(float(c) for c in weights @ corners)
        pois.append(POI(index=len(pois), position=position, face_id=face_id))
    result = POISet(pois)
    if len(result) < start + count:
        # Duplicates were merged; top up with fresh draws.
        deficit = start + count - len(result)
        extra = sample_clustered(mesh, deficit, seed=seed + 1,
                                 existing=result, max_rejects=max_rejects)
        return extra
    return result
