"""Structural diagnostics for terrain meshes.

The oracle's correctness relies on the mesh being a connected 2-manifold
surface patch: every edge borders one (boundary) or two (interior)
faces, the vertex graph is connected, and no face has near-zero area.
:func:`validate_mesh` runs every check and returns a structured report
instead of raising, so callers can decide which problems are fatal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .mesh import TriangleMesh

__all__ = ["ValidationReport", "validate_mesh", "connected_components"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_mesh`."""

    is_manifold: bool
    is_connected: bool
    boundary_edges: int
    non_manifold_edges: int
    isolated_vertices: int
    degenerate_faces: int
    duplicate_faces: int
    components: int
    messages: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the mesh is usable as an oracle substrate."""
        return (self.is_manifold and self.is_connected
                and self.isolated_vertices == 0
                and self.degenerate_faces == 0
                and self.duplicate_faces == 0)


def connected_components(mesh: TriangleMesh) -> int:
    """Number of connected components of the vertex graph."""
    n = mesh.num_vertices
    if n == 0:
        return 0
    neighbors = mesh.vertex_neighbors
    seen = [False] * n
    components = 0
    for start in range(n):
        if seen[start]:
            continue
        components += 1
        stack = [start]
        seen[start] = True
        while stack:
            vertex = stack.pop()
            for neighbor in neighbors[vertex]:
                if not seen[neighbor]:
                    seen[neighbor] = True
                    stack.append(neighbor)
    return components


def validate_mesh(mesh: TriangleMesh, area_epsilon: float = 1e-12
                  ) -> ValidationReport:
    """Run all structural checks and collect a report."""
    messages: List[str] = []

    non_manifold = 0
    boundary = 0
    for edge, face_list in mesh.edge_faces.items():
        if len(face_list) == 1:
            boundary += 1
        elif len(face_list) > 2:
            non_manifold += 1
            messages.append(f"edge {edge} borders {len(face_list)} faces")

    used = np.zeros(mesh.num_vertices, dtype=bool)
    if mesh.num_faces:
        used[mesh.faces.ravel()] = True
    isolated = int((~used).sum())
    if isolated:
        messages.append(f"{isolated} vertices belong to no face")

    areas = mesh.face_areas()
    degenerate = int((areas <= area_epsilon).sum())
    if degenerate:
        messages.append(f"{degenerate} faces have (near-)zero area")

    seen_faces = set()
    duplicates = 0
    for face in mesh.faces:
        key = tuple(sorted(int(v) for v in face))
        if key in seen_faces:
            duplicates += 1
        else:
            seen_faces.add(key)
    if duplicates:
        messages.append(f"{duplicates} duplicate faces")

    components = connected_components(mesh)
    if components > 1:
        messages.append(f"mesh has {components} connected components")

    return ValidationReport(
        is_manifold=non_manifold == 0,
        is_connected=components <= 1,
        boundary_edges=boundary,
        non_manifold_edges=non_manifold,
        isolated_vertices=isolated,
        degenerate_faces=degenerate,
        duplicate_faces=duplicates,
        components=components,
        messages=messages,
    )
