"""Triangulated irregular network (TIN) terrain surface.

The paper's terrain model (Section 2): a set ``V`` of vertices with 3D
coordinates, a set ``E`` of edges and a set of triangular faces; ``N =
|V|``.  :class:`TriangleMesh` stores vertices and faces as numpy arrays
and derives everything else lazily: the undirected edge set, edge
lengths (3D Euclidean), vertex/face adjacency, and a planar face-location
grid used to drop arbitrary ``(x, y)`` points onto the surface (the
paper's A2A query generation does exactly this projection).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["TriangleMesh", "MeshError"]


class MeshError(ValueError):
    """Raised for structurally invalid mesh input."""


class TriangleMesh:
    """An immutable triangle mesh (terrain surface).

    Parameters
    ----------
    vertices:
        ``(N, 3)`` float array of vertex coordinates.
    faces:
        ``(M, 3)`` int array of vertex indices, counter-clockwise when
        viewed from above for terrains (not enforced).

    Notes
    -----
    The mesh is validated on construction: indices must be in range and
    faces non-degenerate (three distinct vertices).  Use
    :mod:`repro.terrain.validation` for deeper diagnostics.
    """

    def __init__(self, vertices: np.ndarray, faces: np.ndarray):
        vertices = np.asarray(vertices, dtype=float)
        faces = np.asarray(faces, dtype=np.int64)
        if vertices.ndim != 2 or vertices.shape[1] != 3:
            raise MeshError(f"vertices must be (N, 3), got {vertices.shape}")
        if faces.size == 0:
            faces = faces.reshape(0, 3)
        if faces.ndim != 2 or faces.shape[1] != 3:
            raise MeshError(f"faces must be (M, 3), got {faces.shape}")
        if faces.size and (faces.min() < 0 or faces.max() >= len(vertices)):
            raise MeshError("face indices out of range")
        degenerate = (
            (faces[:, 0] == faces[:, 1])
            | (faces[:, 1] == faces[:, 2])
            | (faces[:, 0] == faces[:, 2])
        )
        if degenerate.any():
            raise MeshError(
                f"{int(degenerate.sum())} degenerate faces (repeated vertex)"
            )
        self._vertices = vertices
        self._vertices.setflags(write=False)
        self._faces = faces
        self._faces.setflags(write=False)
        # Lazy caches.
        self._edges: Optional[List[Tuple[int, int]]] = None
        self._edge_faces: Optional[Dict[Tuple[int, int], List[int]]] = None
        self._vertex_neighbors: Optional[List[List[int]]] = None
        self._vertex_faces: Optional[List[List[int]]] = None
        self._location_grid: Optional["_FaceLocationGrid"] = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> np.ndarray:
        """``(N, 3)`` read-only vertex coordinates."""
        return self._vertices

    @property
    def faces(self) -> np.ndarray:
        """``(M, 3)`` read-only face vertex indices."""
        return self._faces

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_faces(self) -> int:
        return len(self._faces)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def __repr__(self) -> str:
        return (
            f"TriangleMesh(vertices={self.num_vertices}, "
            f"faces={self.num_faces})"
        )

    # ------------------------------------------------------------------
    # derived topology
    # ------------------------------------------------------------------
    @property
    def edges(self) -> List[Tuple[int, int]]:
        """Sorted list of undirected edges as ``(u, v)`` with ``u < v``."""
        if self._edges is None:
            self._build_edges()
        return self._edges

    @property
    def edge_faces(self) -> Dict[Tuple[int, int], List[int]]:
        """Map from undirected edge to the list of incident face ids."""
        if self._edge_faces is None:
            self._build_edges()
        return self._edge_faces

    def _build_edges(self) -> None:
        edge_faces: Dict[Tuple[int, int], List[int]] = {}
        for face_id, (a, b, c) in enumerate(self._faces):
            for u, v in ((a, b), (b, c), (a, c)):
                key = (int(u), int(v)) if u < v else (int(v), int(u))
                edge_faces.setdefault(key, []).append(face_id)
        self._edge_faces = edge_faces
        self._edges = sorted(edge_faces)

    @property
    def vertex_neighbors(self) -> List[List[int]]:
        """Adjacency list: neighbouring vertex ids per vertex."""
        if self._vertex_neighbors is None:
            neighbors: List[List[int]] = [[] for _ in range(self.num_vertices)]
            for u, v in self.edges:
                neighbors[u].append(v)
                neighbors[v].append(u)
            self._vertex_neighbors = neighbors
        return self._vertex_neighbors

    @property
    def vertex_faces(self) -> List[List[int]]:
        """Incidence list: face ids touching each vertex."""
        if self._vertex_faces is None:
            incident: List[List[int]] = [[] for _ in range(self.num_vertices)]
            for face_id, face in enumerate(self._faces):
                for vertex in face:
                    incident[int(vertex)].append(face_id)
            self._vertex_faces = incident
        return self._vertex_faces

    def faces_adjacent_to(self, face_id: int) -> List[int]:
        """Face ids sharing an edge or a vertex with ``face_id`` (incl. it)."""
        result = set()
        for vertex in self._faces[face_id]:
            result.update(self.vertex_faces[int(vertex)])
        return sorted(result)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def edge_length(self, u: int, v: int) -> float:
        """3D Euclidean length of the edge ``(u, v)``."""
        delta = self._vertices[u] - self._vertices[v]
        return float(math.sqrt(float(delta @ delta)))

    def edge_lengths(self) -> np.ndarray:
        """Lengths of all edges, aligned with :attr:`edges`."""
        edge_array = np.asarray(self.edges, dtype=np.int64)
        if edge_array.size == 0:
            return np.zeros(0)
        delta = self._vertices[edge_array[:, 0]] - self._vertices[edge_array[:, 1]]
        return np.sqrt((delta * delta).sum(axis=1))

    def face_area(self, face_id: int) -> float:
        """3D area of a face."""
        a, b, c = self._faces[face_id]
        ab = self._vertices[b] - self._vertices[a]
        ac = self._vertices[c] - self._vertices[a]
        return 0.5 * float(np.linalg.norm(np.cross(ab, ac)))

    def face_areas(self) -> np.ndarray:
        """3D areas of all faces."""
        a = self._vertices[self._faces[:, 0]]
        b = self._vertices[self._faces[:, 1]]
        c = self._vertices[self._faces[:, 2]]
        cross = np.cross(b - a, c - a)
        return 0.5 * np.sqrt((cross * cross).sum(axis=1))

    def surface_area(self) -> float:
        """Total 3D surface area."""
        return float(self.face_areas().sum())

    def face_angles(self, face_id: int) -> Tuple[float, float, float]:
        """Interior angles (radians) at the three corners of a face."""
        corners = self._vertices[self._faces[face_id]]
        angles = []
        for i in range(3):
            u = corners[(i + 1) % 3] - corners[i]
            v = corners[(i + 2) % 3] - corners[i]
            denom = np.linalg.norm(u) * np.linalg.norm(v)
            cosine = float(np.clip(u @ v / denom, -1.0, 1.0))
            angles.append(math.acos(cosine))
        return tuple(angles)  # type: ignore[return-value]

    def min_inner_angle(self) -> float:
        """Minimum interior angle θ over all faces (paper's θ parameter)."""
        best = math.pi
        for face_id in range(self.num_faces):
            best = min(best, min(self.face_angles(face_id)))
        return best

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(min_corner, max_corner)`` of the vertex cloud."""
        return self._vertices.min(axis=0), self._vertices.max(axis=0)

    def xy_extent(self) -> Tuple[float, float]:
        """Planar extent ``(width_x, width_y)`` of the covered region."""
        low, high = self.bounding_box()
        return float(high[0] - low[0]), float(high[1] - low[1])

    def face_centroid(self, face_id: int) -> np.ndarray:
        """3D centroid of a face."""
        return self._vertices[self._faces[face_id]].mean(axis=0)

    # ------------------------------------------------------------------
    # point location / surface projection
    # ------------------------------------------------------------------
    def locate_face(self, x: float, y: float) -> int:
        """Face whose planar projection contains ``(x, y)``, or ``-1``.

        Used by A2A query generation: "computed the point on the terrain
        surface whose projection on the x-y plane is (x, y)".
        """
        if self._location_grid is None:
            self._location_grid = _FaceLocationGrid(self)
        return self._location_grid.locate(x, y)

    def project_onto_surface(self, x: float, y: float) -> Optional[np.ndarray]:
        """Lift planar ``(x, y)`` to the surface point above it, or None.

        The z value is barycentric interpolation over the containing
        face, which is exactly the terrain height at ``(x, y)``.
        """
        face_id = self.locate_face(x, y)
        if face_id < 0:
            return None
        weights = self.barycentric_weights(face_id, x, y)
        corners = self._vertices[self._faces[face_id]]
        return weights @ corners

    def barycentric_weights(self, face_id: int, x: float, y: float) -> np.ndarray:
        """Planar barycentric weights of ``(x, y)`` within ``face_id``."""
        (ax, ay), (bx, by), (cx, cy) = self._vertices[self._faces[face_id]][:, :2]
        det = (by - cy) * (ax - cx) + (cx - bx) * (ay - cy)
        if abs(det) < 1e-30:
            raise MeshError(f"face {face_id} is planar-degenerate")
        w0 = ((by - cy) * (x - cx) + (cx - bx) * (y - cy)) / det
        w1 = ((cy - ay) * (x - cx) + (ax - cx) * (y - cy)) / det
        return np.array([w0, w1, 1.0 - w0 - w1])

    def contains_point_2d(self, face_id: int, x: float, y: float,
                          tolerance: float = 1e-9) -> bool:
        """Whether the planar projection of ``face_id`` covers ``(x, y)``."""
        try:
            weights = self.barycentric_weights(face_id, x, y)
        except MeshError:
            return False
        return bool((weights >= -tolerance).all())


class _FaceLocationGrid:
    """Uniform planar grid over face bounding boxes for point location."""

    def __init__(self, mesh: TriangleMesh, target_faces_per_cell: float = 2.0):
        self._mesh = mesh
        low, high = mesh.bounding_box()
        self._x0, self._y0 = float(low[0]), float(low[1])
        width = max(high[0] - low[0], 1e-12)
        height = max(high[1] - low[1], 1e-12)
        cells = max(1, int(math.sqrt(max(mesh.num_faces, 1)
                                     / target_faces_per_cell)))
        self._nx = self._ny = cells
        self._dx = width / cells
        self._dy = height / cells
        self._buckets: Dict[Tuple[int, int], List[int]] = {}
        xy = mesh.vertices[:, :2]
        for face_id, face in enumerate(mesh.faces):
            corners = xy[face]
            min_cx, min_cy = self._cell(corners[:, 0].min(), corners[:, 1].min())
            max_cx, max_cy = self._cell(corners[:, 0].max(), corners[:, 1].max())
            for cell_x in range(min_cx, max_cx + 1):
                for cell_y in range(min_cy, max_cy + 1):
                    self._buckets.setdefault((cell_x, cell_y), []).append(face_id)

    def _cell(self, x: float, y: float) -> Tuple[int, int]:
        cell_x = int((x - self._x0) / self._dx)
        cell_y = int((y - self._y0) / self._dy)
        return (min(max(cell_x, 0), self._nx - 1),
                min(max(cell_y, 0), self._ny - 1))

    def locate(self, x: float, y: float) -> int:
        for face_id in self._buckets.get(self._cell(x, y), ()):
            if self._mesh.contains_point_2d(face_id, x, y):
                return face_id
        return -1
