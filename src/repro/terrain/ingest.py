"""Real-DEM ingestion: elevation rasters -> TIN -> placed POIs.

Every dataset the oracle had ever been built on was synthetic
(:mod:`repro.terrain.generation`).  This module ingests *real* digital
elevation models without any new dependencies:

* :func:`read_asc` — ESRI ASCII grid (``.asc``), the interchange format
  most public DEM portals (USGS, SRTM re-exports) can emit;
* :func:`read_geotiff` — a minimal uncompressed single-band GeoTIFF
  subset (strip-organised, no compression, int/uint/float samples),
  parsed directly from the TIFF structure with :mod:`struct`;
* :func:`dem_to_mesh` — raster -> TIN with nodata-cell handling and
  optional decimation, projecting geographic grids onto a local
  metric plane (:class:`LocalProjection`) so edge lengths are metres;
* :func:`place_pois` — lat/lon POIs -> projected surface points, with
  out-of-extent detection;
* :func:`haversine_m` / :func:`haversine_gate` — the physical-sanity
  cross-check: a geodesic distance measured *on* the surface can never
  undercut the great-circle distance between the same two geographic
  points (beyond the oracle's ε and the projection's small-area
  distortion), in the spirit of osmfast's haversine routing tests.

The readers normalise everything into one :class:`DEMGrid`: heights as
a float array with ``NaN`` marking nodata cells, rows ordered
north-to-south, plus per-row/-column cell-centre coordinates.
"""

from __future__ import annotations

import math
import os
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .mesh import TriangleMesh
from .poi import POI, POISet

__all__ = [
    "EARTH_RADIUS_M",
    "IngestError",
    "DEMGrid",
    "LocalProjection",
    "read_asc",
    "read_geotiff",
    "read_dem",
    "dem_to_mesh",
    "read_poi_csv",
    "place_pois",
    "sample_poi_latlons",
    "haversine_m",
    "haversine_gate",
]

PathLike = Union[str, os.PathLike]

#: IUGG mean Earth radius, metres — shared by projection and haversine.
EARTH_RADIUS_M = 6_371_008.8


class IngestError(ValueError):
    """Raised for malformed, truncated or unusable DEM/POI input."""


# ----------------------------------------------------------------------
# the normalised raster
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DEMGrid:
    """A parsed DEM raster, normalised across input formats.

    Attributes
    ----------
    heights:
        ``(nrows, ncols)`` float array; ``NaN`` marks nodata cells.
        Row 0 is the northernmost row.
    lats / lons:
        Cell-centre coordinates per row / column (degrees for
        geographic grids, metres for projected ones).
    source:
        Originating file path (diagnostics only).
    """

    heights: np.ndarray
    lats: np.ndarray
    lons: np.ndarray
    source: str = ""

    @property
    def shape(self) -> Tuple[int, int]:
        return self.heights.shape  # type: ignore[return-value]

    @property
    def num_valid(self) -> int:
        return int(np.isfinite(self.heights).sum())

    @property
    def valid_fraction(self) -> float:
        return self.num_valid / self.heights.size if self.heights.size else 0.0

    @property
    def is_geographic(self) -> bool:
        """Heuristic: coordinates that fit degrees are degrees.

        Real projected DEMs carry coordinates in the 10^5-10^6 m range;
        geographic ones sit inside [-180, 180] x [-90, 90] with
        sub-degree cell sizes.  The two regimes do not overlap for any
        terrain bigger than a parking lot.
        """
        if self.lats.size == 0 or self.lons.size == 0:
            return False
        return bool(
            np.abs(self.lats).max() <= 90.0
            and np.abs(self.lons).max() <= 360.0
        )

    def decimate(self, factor: int) -> "DEMGrid":
        """Every ``factor``-th row and column (``factor`` = 1 is a no-op)."""
        if factor < 1:
            raise IngestError(f"decimation factor must be >= 1, got {factor}")
        if factor == 1:
            return self
        return DEMGrid(
            heights=self.heights[::factor, ::factor],
            lats=self.lats[::factor],
            lons=self.lons[::factor],
            source=self.source,
        )


@dataclass(frozen=True)
class LocalProjection:
    """Equirectangular projection about a reference point.

    Good to well under 0.1% over the few-kilometre extents a terrain
    oracle serves; the haversine gate's slack absorbs the residual.
    ``x`` grows east, ``y`` grows north, both in metres.
    """

    lat0: float
    lon0: float

    def to_xy(self, lat: float, lon: float) -> Tuple[float, float]:
        x = (
            EARTH_RADIUS_M
            * math.radians(lon - self.lon0)
            * math.cos(math.radians(self.lat0))
        )
        y = EARTH_RADIUS_M * math.radians(lat - self.lat0)
        return x, y

    def to_latlon(self, x: float, y: float) -> Tuple[float, float]:
        lat = self.lat0 + math.degrees(y / EARTH_RADIUS_M)
        lon = self.lon0 + math.degrees(
            x / (EARTH_RADIUS_M * math.cos(math.radians(self.lat0)))
        )
        return lat, lon


# ----------------------------------------------------------------------
# ESRI ASCII grid
# ----------------------------------------------------------------------
_ASC_HEADER_KEYS = (
    "ncols",
    "nrows",
    "xllcorner",
    "xllcenter",
    "yllcorner",
    "yllcenter",
    "cellsize",
    "nodata_value",
)


def read_asc(path: PathLike) -> DEMGrid:
    """Read an ESRI ASCII grid (``.asc``).

    Header keys are case-insensitive; both ``xllcorner`` (cell edge)
    and ``xllcenter`` conventions are supported and normalised to
    cell-centre coordinates.  Data rows run north to south, matching
    the format.  Truncated or over-full data sections raise
    :class:`IngestError` rather than mis-shaping silently.
    """
    header: dict = {}
    data_tokens: List[str] = []
    with open(path) as handle:
        for raw in handle:
            tokens = raw.split()
            if not tokens:
                continue
            key = tokens[0].lower()
            if not data_tokens and key in _ASC_HEADER_KEYS:
                if len(tokens) != 2:
                    raise IngestError(f"{path}: malformed header line {raw!r}")
                header[key] = float(tokens[1])
            else:
                data_tokens.extend(tokens)

    for required in ("ncols", "nrows", "cellsize"):
        if required not in header:
            raise IngestError(f"{path}: missing header key {required!r}")
    if "xllcorner" not in header and "xllcenter" not in header:
        raise IngestError(f"{path}: missing xllcorner/xllcenter")
    if "yllcorner" not in header and "yllcenter" not in header:
        raise IngestError(f"{path}: missing yllcorner/yllcenter")

    ncols = int(header["ncols"])
    nrows = int(header["nrows"])
    cellsize = header["cellsize"]
    if ncols < 2 or nrows < 2:
        raise IngestError(f"{path}: grid must be at least 2x2, got {nrows}x{ncols}")
    if cellsize <= 0:
        raise IngestError(f"{path}: cellsize must be positive, got {cellsize}")
    if len(data_tokens) != nrows * ncols:
        raise IngestError(
            f"{path}: expected {nrows * ncols} height values, "
            f"got {len(data_tokens)} (truncated or over-full grid)"
        )
    try:
        heights = np.asarray([float(token) for token in data_tokens])
    except ValueError as error:
        raise IngestError(f"{path}: non-numeric height value: {error}") from None
    heights = heights.reshape(nrows, ncols)
    if "nodata_value" in header:
        heights = np.where(heights == header["nodata_value"], np.nan, heights)

    if "xllcenter" in header:
        x0 = header["xllcenter"]
    else:
        x0 = header["xllcorner"] + 0.5 * cellsize
    if "yllcenter" in header:
        y0 = header["yllcenter"]
    else:
        y0 = header["yllcorner"] + 0.5 * cellsize
    lons = x0 + cellsize * np.arange(ncols)
    # Row 0 of the data section is the northernmost row.
    lats = y0 + cellsize * (nrows - 1 - np.arange(nrows))
    return DEMGrid(heights=heights, lats=lats, lons=lons, source=str(path))


# ----------------------------------------------------------------------
# minimal GeoTIFF subset
# ----------------------------------------------------------------------
_TIFF_TYPE_SIZES = {
    1: 1,  # BYTE
    2: 1,  # ASCII
    3: 2,  # SHORT
    4: 4,  # LONG
    5: 8,  # RATIONAL
    6: 1,  # SBYTE
    8: 2,  # SSHORT
    9: 4,  # SLONG
    11: 4,  # FLOAT
    12: 8,  # DOUBLE
}
_TIFF_TYPE_FORMATS = {
    1: "B",
    3: "H",
    4: "I",
    6: "b",
    8: "h",
    9: "i",
    11: "f",
    12: "d",
}

_TAG_WIDTH = 256
_TAG_LENGTH = 257
_TAG_BITS_PER_SAMPLE = 258
_TAG_COMPRESSION = 259
_TAG_STRIP_OFFSETS = 273
_TAG_SAMPLES_PER_PIXEL = 277
_TAG_ROWS_PER_STRIP = 278
_TAG_STRIP_BYTE_COUNTS = 279
_TAG_SAMPLE_FORMAT = 339
_TAG_MODEL_PIXEL_SCALE = 33550
_TAG_MODEL_TIEPOINT = 33922
_TAG_GDAL_NODATA = 42113

_SAMPLE_DTYPES = {
    (1, 8): "u1",
    (1, 16): "u2",
    (1, 32): "u4",
    (2, 16): "i2",
    (2, 32): "i4",
    (3, 32): "f4",
    (3, 64): "f8",
}


def _read_tiff_tags(data: bytes, path: PathLike) -> Tuple[dict, str]:
    """Parse the first IFD into ``{tag: (values tuple)}``."""
    if len(data) < 8:
        raise IngestError(f"{path}: truncated TIFF header")
    if data[:2] == b"II":
        endian = "<"
    elif data[:2] == b"MM":
        endian = ">"
    else:
        raise IngestError(f"{path}: not a TIFF file (bad byte-order mark)")
    magic, ifd_offset = struct.unpack(endian + "HI", data[2:8])
    if magic != 42:
        raise IngestError(f"{path}: not a TIFF file (magic {magic} != 42)")
    if ifd_offset + 2 > len(data):
        raise IngestError(f"{path}: truncated TIFF (IFD offset out of range)")
    (entry_count,) = struct.unpack_from(endian + "H", data, ifd_offset)
    tags: dict = {}
    for index in range(entry_count):
        base = ifd_offset + 2 + 12 * index
        if base + 12 > len(data):
            raise IngestError(f"{path}: truncated TIFF IFD")
        tag, type_id, count = struct.unpack_from(endian + "HHI", data, base)
        size = _TIFF_TYPE_SIZES.get(type_id)
        if size is None:
            continue  # unknown value type; skip the tag
        total = size * count
        if total <= 4:
            offset = base + 8
        else:
            (offset,) = struct.unpack_from(endian + "I", data, base + 8)
        if offset + total > len(data):
            raise IngestError(f"{path}: truncated TIFF (tag {tag} data)")
        if type_id == 2:  # ASCII, NUL-terminated
            raw = data[offset : offset + count]
            tags[tag] = (raw.split(b"\x00", 1)[0].decode("ascii", "replace"),)
        else:
            fmt = _TIFF_TYPE_FORMATS[type_id]
            if type_id == 5:  # RATIONAL -> float
                pairs = struct.unpack_from(endian + "II" * count, data, offset)
                tags[tag] = tuple(
                    pairs[i] / pairs[i + 1] if pairs[i + 1] else float("nan")
                    for i in range(0, 2 * count, 2)
                )
            else:
                tags[tag] = struct.unpack_from(endian + fmt * count, data, offset)
    return tags, endian


def read_geotiff(path: PathLike) -> DEMGrid:
    """Read a minimal uncompressed single-band GeoTIFF.

    Supported subset: strip-organised, ``Compression == 1`` (none),
    one sample per pixel, 8/16/32-bit integer or 32/64-bit float
    samples, georeferenced by ``ModelPixelScale`` + ``ModelTiepoint``,
    with GDAL's ASCII nodata tag honoured.  Anything else raises
    :class:`IngestError` naming the unsupported feature — better a
    typed refusal than a silently garbled terrain.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    tags, endian = _read_tiff_tags(data, path)

    def require(tag: int, name: str):
        if tag not in tags:
            raise IngestError(f"{path}: missing required TIFF tag {name}")
        return tags[tag]

    width = int(require(_TAG_WIDTH, "ImageWidth")[0])
    length = int(require(_TAG_LENGTH, "ImageLength")[0])
    compression = int(tags.get(_TAG_COMPRESSION, (1,))[0])
    if compression != 1:
        raise IngestError(
            f"{path}: compression {compression} unsupported "
            "(only uncompressed strips)"
        )
    samples = int(tags.get(_TAG_SAMPLES_PER_PIXEL, (1,))[0])
    if samples != 1:
        raise IngestError(f"{path}: {samples} samples/pixel unsupported")
    bits = int(tags.get(_TAG_BITS_PER_SAMPLE, (32,))[0])
    sample_format = int(tags.get(_TAG_SAMPLE_FORMAT, (1,))[0])
    dtype_suffix = _SAMPLE_DTYPES.get((sample_format, bits))
    if dtype_suffix is None:
        raise IngestError(
            f"{path}: sample format {sample_format} at {bits} bits unsupported"
        )
    offsets = require(_TAG_STRIP_OFFSETS, "StripOffsets")
    byte_counts = require(_TAG_STRIP_BYTE_COUNTS, "StripByteCounts")
    if len(offsets) != len(byte_counts):
        raise IngestError(f"{path}: StripOffsets/StripByteCounts mismatch")
    raw = bytearray()
    for offset, count in zip(offsets, byte_counts):
        if offset + count > len(data):
            raise IngestError(f"{path}: truncated TIFF strip data")
        raw += data[offset : offset + count]
    expected = width * length * (bits // 8)
    if len(raw) < expected:
        raise IngestError(
            f"{path}: strip data holds {len(raw)} bytes, "
            f"needs {expected} for {length}x{width}x{bits}bit"
        )
    heights = (
        np.frombuffer(bytes(raw[:expected]), dtype=endian + dtype_suffix)
        .reshape(length, width)
        .astype(float)
    )
    if _TAG_GDAL_NODATA in tags:
        try:
            nodata = float(tags[_TAG_GDAL_NODATA][0].strip())
        except ValueError:
            nodata = None
        if nodata is not None:
            heights = np.where(heights == nodata, np.nan, heights)

    scale = require(_TAG_MODEL_PIXEL_SCALE, "ModelPixelScale")
    tiepoint = require(_TAG_MODEL_TIEPOINT, "ModelTiepoint")
    if len(scale) < 2 or len(tiepoint) < 6:
        raise IngestError(f"{path}: malformed GeoTIFF georeferencing tags")
    scale_x, scale_y = float(scale[0]), float(scale[1])
    raster_i, raster_j = float(tiepoint[0]), float(tiepoint[1])
    model_x, model_y = float(tiepoint[3]), float(tiepoint[4])
    if scale_x <= 0 or scale_y <= 0:
        raise IngestError(f"{path}: non-positive pixel scale")
    # Tiepoint maps raster (i, j) to model (x, y); pixel centres sit
    # half a cell in from the pixel corner, rows running southward.
    lons = model_x + (0.5 - raster_i + np.arange(width)) * scale_x
    lats = model_y - (0.5 - raster_j + np.arange(length)) * scale_y
    return DEMGrid(heights=heights, lats=lats, lons=lons, source=str(path))


def read_dem(path: PathLike) -> DEMGrid:
    """Dispatch on file extension (``.asc`` / ``.tif`` / ``.tiff``)."""
    suffix = str(path).rsplit(".", 1)[-1].lower()
    if suffix == "asc":
        return read_asc(path)
    if suffix in ("tif", "tiff"):
        return read_geotiff(path)
    raise IngestError(f"unsupported DEM format: .{suffix} (use .asc or .tif)")


# ----------------------------------------------------------------------
# raster -> TIN
# ----------------------------------------------------------------------
def dem_to_mesh(
    grid: DEMGrid,
    decimate: int = 1,
    z_scale: float = 1.0,
) -> Tuple[TriangleMesh, Optional[LocalProjection]]:
    """Triangulate a DEM into a TIN, skipping nodata cells.

    Geographic grids are projected onto a local metric plane about the
    grid centre (the returned :class:`LocalProjection`; ``None`` for
    already-projected grids).  Each 2x2 cell block contributes up to
    two triangles with an alternating diagonal; a triangle is emitted
    only when all three of its corners carry valid heights, so nodata
    holes become holes in the mesh instead of fabricated elevations.
    """
    grid = grid.decimate(decimate)
    heights = grid.heights
    nrows, ncols = heights.shape
    valid = np.isfinite(heights)
    if not valid.any():
        raise IngestError(f"{grid.source or 'DEM'}: every cell is nodata")

    projection: Optional[LocalProjection] = None
    if grid.is_geographic:
        projection = LocalProjection(
            lat0=float(grid.lats.mean()), lon0=float(grid.lons.mean())
        )
        xs = (
            EARTH_RADIUS_M
            * np.radians(grid.lons - projection.lon0)
            * math.cos(math.radians(projection.lat0))
        )
        ys = EARTH_RADIUS_M * np.radians(grid.lats - projection.lat0)
    else:
        xs = grid.lons.astype(float)
        ys = grid.lats.astype(float)

    vertex_id = np.full((nrows, ncols), -1, dtype=np.int64)
    vertex_id[valid] = np.arange(int(valid.sum()))
    grid_x, grid_y = np.meshgrid(xs, ys)  # (nrows, ncols) each
    vertices = np.column_stack(
        [
            grid_x[valid],
            grid_y[valid],
            heights[valid] * z_scale,
        ]
    )

    faces: List[Tuple[int, int, int]] = []

    def emit(a: Tuple[int, int], b: Tuple[int, int], c: Tuple[int, int]) -> None:
        ia, ib, ic = vertex_id[a], vertex_id[b], vertex_id[c]
        if ia >= 0 and ib >= 0 and ic >= 0:
            faces.append((int(ia), int(ib), int(ic)))

    for r in range(nrows - 1):
        for c in range(ncols - 1):
            nw, sw = (r, c), (r + 1, c)
            se, ne = (r + 1, c + 1), (r, c + 1)
            if (r + c) % 2 == 0:
                emit(nw, sw, se)
                emit(nw, se, ne)
            else:
                emit(nw, sw, ne)
                emit(sw, se, ne)
    if not faces:
        raise IngestError(
            f"{grid.source or 'DEM'}: no triangulatable 2x2 block of valid "
            "cells (grid too sparse after nodata masking/decimation)"
        )
    mesh = TriangleMesh(vertices, np.asarray(faces, dtype=np.int64))
    return mesh, projection


# ----------------------------------------------------------------------
# POI placement
# ----------------------------------------------------------------------
def read_poi_csv(path: PathLike) -> Tuple[List[str], List[Tuple[float, float]]]:
    """Read ``name,lat,lon`` lines (header line and comments tolerated)."""
    names: List[str] = []
    latlons: List[Tuple[float, float]] = []
    with open(path) as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = [part.strip() for part in line.split(",")]
            if len(parts) != 3:
                raise IngestError(
                    f"{path}:{line_no}: expected 'name,lat,lon', got {line!r}"
                )
            try:
                lat, lon = float(parts[1]), float(parts[2])
            except ValueError:
                if line_no == 1:
                    continue  # header row
                raise IngestError(
                    f"{path}:{line_no}: non-numeric lat/lon in {line!r}"
                ) from None
            if not (-90.0 <= lat <= 90.0):
                raise IngestError(f"{path}:{line_no}: latitude {lat} out of range")
            names.append(parts[0])
            latlons.append((lat, lon))
    if not latlons:
        raise IngestError(f"{path}: no POI records")
    return names, latlons


def place_pois(
    mesh: TriangleMesh,
    projection: Optional[LocalProjection],
    latlons: Sequence[Tuple[float, float]],
) -> POISet:
    """Project geographic POIs onto the ingested surface.

    Each (lat, lon) is mapped to local metres, located on the TIN and
    lifted to the surface height.  Points outside the DEM extent (or
    inside a nodata hole) raise :class:`IngestError` naming the
    offender; a surface-proximity index built over silently dropped
    POIs would answer with shifted ids.
    """
    if projection is None:
        raise IngestError(
            "POI placement by lat/lon needs a geographic DEM "
            "(projected grids carry no geographic reference)"
        )
    pois: List[POI] = []
    for index, (lat, lon) in enumerate(latlons):
        x, y = projection.to_xy(lat, lon)
        face_id = mesh.locate_face(x, y)
        if face_id < 0:
            raise IngestError(
                f"POI {index} at ({lat:.6f}, {lon:.6f}) falls outside the "
                "DEM extent (or inside a nodata hole)"
            )
        position = mesh.project_onto_surface(x, y)
        if position is None:  # pragma: no cover - locate_face already gated
            raise IngestError(f"POI {index} could not be lifted to the surface")
        pois.append(
            POI(
                index=index,
                position=tuple(float(value) for value in position),
                face_id=face_id,
            )
        )
    result = POISet(pois)
    if len(result) != len(latlons):
        raise IngestError(
            f"{len(latlons) - len(result)} duplicate POI position(s) after "
            "surface projection; de-duplicate the POI list"
        )
    return result


def sample_poi_latlons(
    mesh: TriangleMesh,
    projection: LocalProjection,
    count: int,
    seed: int = 0,
) -> List[Tuple[float, float]]:
    """Seeded uniform surface sample, reported as geographic POIs."""
    from .poi import sample_uniform

    sampled = sample_uniform(mesh, count, seed=seed)
    return [projection.to_latlon(poi.x, poi.y) for poi in sampled]


# ----------------------------------------------------------------------
# haversine sanity gate
# ----------------------------------------------------------------------
def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in metres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def haversine_gate(
    index,
    latlons: Sequence[Tuple[float, float]],
    epsilon: float,
    slack: float = 0.05,
) -> dict:
    """Cross-check oracle distances against the great-circle lower bound.

    A path along the terrain surface is at least as long as the
    straight planar segment between its endpoints, which the haversine
    distance approximates to well under ``slack`` over oracle-sized
    extents.  The oracle itself may sit up to ``epsilon`` below the
    true geodesic, so the gate requires::

        d_oracle(i, j) >= haversine(i, j) * (1 - epsilon - slack)

    for every distinct POI pair.  Returns a report dict with the
    minimum observed ratio and the failing pairs (empty when ``ok``).
    """
    count = len(latlons)
    if count != index.num_pois:
        raise IngestError(
            f"haversine gate: {count} geographic POIs vs "
            f"{index.num_pois} oracle POIs"
        )
    matrix = index.query_matrix()
    floor = 1.0 - epsilon - slack
    failures: List[dict] = []
    min_ratio = math.inf
    pairs_checked = 0
    for i in range(count):
        lat1, lon1 = latlons[i]
        for j in range(i + 1, count):
            lower = haversine_m(lat1, lon1, latlons[j][0], latlons[j][1])
            if lower <= 0.0:
                continue
            pairs_checked += 1
            ratio = float(matrix[i, j]) / lower
            if ratio < min_ratio:
                min_ratio = ratio
            if ratio < floor:
                failures.append(
                    {
                        "source": i,
                        "target": j,
                        "oracle_m": float(matrix[i, j]),
                        "haversine_m": lower,
                        "ratio": ratio,
                    }
                )
    return {
        "pairs_checked": pairs_checked,
        "min_ratio": min_ratio if pairs_checked else math.inf,
        "floor": floor,
        "failures": failures,
        "ok": not failures,
    }
