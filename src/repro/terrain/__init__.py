"""Terrain substrate: TIN meshes, generation, I/O, POIs and diagnostics."""

from .generation import (
    diamond_square,
    gaussian_hills,
    heightfield_to_mesh,
    make_terrain,
    refine_centroid,
    simplify_grid,
)
from .ingest import (
    DEMGrid,
    IngestError,
    LocalProjection,
    dem_to_mesh,
    haversine_gate,
    haversine_m,
    place_pois,
    read_asc,
    read_dem,
    read_geotiff,
    read_poi_csv,
    sample_poi_latlons,
)
from .io import read_mesh, read_obj, read_off, write_mesh, write_obj, write_off
from .mesh import MeshError, TriangleMesh
from .metrics import TerrainStatistics, terrain_statistics
from .poi import (
    POI,
    POISet,
    pois_from_vertices,
    random_surface_point,
    sample_clustered,
    sample_uniform,
)
from .validation import ValidationReport, connected_components, validate_mesh

__all__ = [
    "TriangleMesh",
    "MeshError",
    "diamond_square",
    "gaussian_hills",
    "heightfield_to_mesh",
    "make_terrain",
    "refine_centroid",
    "simplify_grid",
    "read_mesh",
    "read_obj",
    "read_off",
    "write_mesh",
    "write_obj",
    "write_off",
    "TerrainStatistics",
    "terrain_statistics",
    "POI",
    "POISet",
    "pois_from_vertices",
    "random_surface_point",
    "sample_clustered",
    "sample_uniform",
    "ValidationReport",
    "connected_components",
    "validate_mesh",
    "DEMGrid",
    "IngestError",
    "LocalProjection",
    "dem_to_mesh",
    "haversine_gate",
    "haversine_m",
    "place_pois",
    "read_asc",
    "read_dem",
    "read_geotiff",
    "read_poi_csv",
    "sample_poi_latlons",
]
