"""Terrain substrate: TIN meshes, generation, I/O, POIs and diagnostics."""

from .generation import (
    diamond_square,
    gaussian_hills,
    heightfield_to_mesh,
    make_terrain,
    refine_centroid,
    simplify_grid,
)
from .io import read_mesh, read_obj, read_off, write_mesh, write_obj, write_off
from .mesh import MeshError, TriangleMesh
from .metrics import TerrainStatistics, terrain_statistics
from .poi import (
    POI,
    POISet,
    pois_from_vertices,
    random_surface_point,
    sample_clustered,
    sample_uniform,
)
from .validation import ValidationReport, connected_components, validate_mesh

__all__ = [
    "TriangleMesh",
    "MeshError",
    "diamond_square",
    "gaussian_hills",
    "heightfield_to_mesh",
    "make_terrain",
    "refine_centroid",
    "simplify_grid",
    "read_mesh",
    "read_obj",
    "read_off",
    "write_mesh",
    "write_obj",
    "write_off",
    "TerrainStatistics",
    "terrain_statistics",
    "POI",
    "POISet",
    "pois_from_vertices",
    "random_surface_point",
    "sample_clustered",
    "sample_uniform",
    "ValidationReport",
    "connected_components",
    "validate_mesh",
]
