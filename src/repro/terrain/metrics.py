"""Terrain shape statistics (Table 2-style dataset descriptions).

Table 2 of the paper characterises each dataset by vertex count,
resolution and covered region; the complexity bounds additionally use
the minimum inner angle θ and the edge-length extremes
``l_min``/``l_max`` (K-Algo's bound).  :func:`terrain_statistics`
computes all of them for any mesh.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .mesh import TriangleMesh

__all__ = ["TerrainStatistics", "terrain_statistics"]


@dataclass(frozen=True)
class TerrainStatistics:
    """Shape summary of a terrain mesh."""

    num_vertices: int
    num_edges: int
    num_faces: int
    extent_x: float
    extent_y: float
    relief: float
    resolution: float           # mean planar spacing between adjacent vertices
    min_edge_length: float      # l_min in K-Algo's complexity bound
    max_edge_length: float      # l_max
    min_inner_angle_deg: float  # θ in SP-Oracle's complexity bound
    surface_area: float
    planar_area: float
    ruggedness: float           # surface area / planar area (>= 1)

    def describe(self) -> str:
        """One-line, Table 2-style description."""
        return (
            f"{self.num_vertices} vertices, resolution {self.resolution:.1f} m, "
            f"region {self.extent_x / 1000:.1f}km x {self.extent_y / 1000:.1f}km, "
            f"relief {self.relief:.0f} m"
        )


def terrain_statistics(mesh: TriangleMesh) -> TerrainStatistics:
    """Compute the :class:`TerrainStatistics` of a mesh."""
    if mesh.num_faces == 0:
        raise ValueError("cannot summarise an empty mesh")
    low, high = mesh.bounding_box()
    extent_x = float(high[0] - low[0])
    extent_y = float(high[1] - low[1])
    lengths = mesh.edge_lengths()
    edge_array = np.asarray(mesh.edges, dtype=np.int64)
    planar_delta = (mesh.vertices[edge_array[:, 0], :2]
                    - mesh.vertices[edge_array[:, 1], :2])
    planar_spacing = np.sqrt((planar_delta ** 2).sum(axis=1))
    surface = mesh.surface_area()
    planar = max(extent_x * extent_y, 1e-12)
    return TerrainStatistics(
        num_vertices=mesh.num_vertices,
        num_edges=mesh.num_edges,
        num_faces=mesh.num_faces,
        extent_x=extent_x,
        extent_y=extent_y,
        relief=float(high[2] - low[2]),
        resolution=float(planar_spacing.mean()),
        min_edge_length=float(lengths.min()),
        max_edge_length=float(lengths.max()),
        min_inner_angle_deg=math.degrees(mesh.min_inner_angle()),
        surface_area=surface,
        planar_area=planar,
        ruggedness=surface / planar,
    )
