"""Mesh file I/O: OFF and Wavefront OBJ.

Real terrain meshes circulate as ``.off``/``.obj``; these loaders let a
user run the oracle on their own data.  Only the geometry subset needed
for terrains is supported (vertices + triangular faces; OBJ normals,
textures and groups are skipped on read and never written).
"""

from __future__ import annotations

import os
from typing import List, TextIO, Union

import numpy as np

from .mesh import MeshError, TriangleMesh

__all__ = ["read_off", "write_off", "read_obj", "write_obj", "read_mesh",
           "write_mesh"]

PathLike = Union[str, os.PathLike]


def read_off(path: PathLike) -> TriangleMesh:
    """Read an OFF file (header ``OFF``; counts; vertices; faces)."""
    with open(path) as handle:
        tokens = _tokenize(handle)
    if not tokens or tokens[0].upper() != "OFF":
        raise MeshError(f"{path}: missing OFF header")
    cursor = 1
    try:
        num_vertices = int(tokens[cursor])
        num_faces = int(tokens[cursor + 1])
        cursor += 3  # skip edge count
        coords = [float(tokens[cursor + i]) for i in range(3 * num_vertices)]
        cursor += 3 * num_vertices
        faces: List[List[int]] = []
        for _ in range(num_faces):
            arity = int(tokens[cursor])
            cursor += 1
            if arity != 3:
                raise MeshError(f"{path}: only triangular faces supported")
            faces.append([int(tokens[cursor + i]) for i in range(3)])
            cursor += 3
    except (IndexError, ValueError) as exc:
        raise MeshError(f"{path}: truncated or malformed OFF file") from exc
    vertices = np.asarray(coords, dtype=float).reshape(num_vertices, 3)
    return TriangleMesh(vertices, np.asarray(faces, dtype=np.int64))


def write_off(mesh: TriangleMesh, path: PathLike) -> None:
    """Write a mesh as OFF."""
    with open(path, "w") as handle:
        handle.write("OFF\n")
        handle.write(f"{mesh.num_vertices} {mesh.num_faces} 0\n")
        for x, y, z in mesh.vertices:
            handle.write(f"{float(x)!r} {float(y)!r} {float(z)!r}\n")
        for a, b, c in mesh.faces:
            handle.write(f"3 {a} {b} {c}\n")


def read_obj(path: PathLike) -> TriangleMesh:
    """Read a Wavefront OBJ file (``v`` and triangular ``f`` records)."""
    vertices: List[List[float]] = []
    faces: List[List[int]] = []
    with open(path) as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            tag = parts[0]
            if tag == "v":
                if len(parts) < 4:
                    raise MeshError(f"{path}:{line_no}: short vertex record")
                vertices.append([float(value) for value in parts[1:4]])
            elif tag == "f":
                if len(parts) != 4:
                    raise MeshError(
                        f"{path}:{line_no}: only triangular faces supported"
                    )
                indices = []
                for token in parts[1:]:
                    index = int(token.split("/", 1)[0])
                    # OBJ indices are 1-based; negatives count from the end.
                    indices.append(index - 1 if index > 0
                                   else len(vertices) + index)
                faces.append(indices)
            # vn / vt / g / o / usemtl etc. are ignored.
    return TriangleMesh(np.asarray(vertices, dtype=float).reshape(-1, 3),
                        np.asarray(faces, dtype=np.int64).reshape(-1, 3))


def write_obj(mesh: TriangleMesh, path: PathLike) -> None:
    """Write a mesh as Wavefront OBJ."""
    with open(path, "w") as handle:
        handle.write("# exported by repro.terrain.io\n")
        for x, y, z in mesh.vertices:
            handle.write(f"v {float(x)!r} {float(y)!r} {float(z)!r}\n")
        for a, b, c in mesh.faces:
            handle.write(f"f {a + 1} {b + 1} {c + 1}\n")


def read_mesh(path: PathLike) -> TriangleMesh:
    """Dispatch on file extension (``.off`` / ``.obj``)."""
    suffix = str(path).rsplit(".", 1)[-1].lower()
    if suffix == "off":
        return read_off(path)
    if suffix == "obj":
        return read_obj(path)
    raise MeshError(f"unsupported mesh format: .{suffix}")


def write_mesh(mesh: TriangleMesh, path: PathLike) -> None:
    """Dispatch on file extension (``.off`` / ``.obj``)."""
    suffix = str(path).rsplit(".", 1)[-1].lower()
    if suffix == "off":
        write_off(mesh, path)
    elif suffix == "obj":
        write_obj(mesh, path)
    else:
        raise MeshError(f"unsupported mesh format: .{suffix}")


def _tokenize(handle: TextIO) -> List[str]:
    tokens: List[str] = []
    for raw in handle:
        line = raw.split("#", 1)[0]
        tokens.extend(line.split())
    return tokens
