"""SQL analytics mirror: a v4 store's tables as a sqlite3 database.

Ad-hoc analytics — error panels, pair-count-by-layer histograms,
coverage joins — should not require writing NumPy against the packed
columns.  :func:`mirror_store` streams a store's pair table, tree
rows, and ancestor chains into a stdlib :mod:`sqlite3` database
(page-sized chunks: the mirror itself never materialises an O(#pairs)
array), :func:`mirror_service_stats` adds a service's per-terrain
counters, and a set of **canned views** answers the common questions
as plain SQL.  The ``repro analyze`` CLI verb wraps all of it.

Schema
------
``meta(key, value)``
    Flattened store metadata (``epsilon``, ``seed``, ``stats.*`` …).
``tree_nodes(node_id, center, layer, parent, origin, radius)``
    One row per compressed-tree node (``tree_table`` + ``tree_radii``).
``pairs(pair_index, source_node, target_node, distance)``
    The node-pair set, keys unpacked into their two node ids.
``chains(poi, layer, node)``
    Occupied ancestor-chain entries (the ``-1`` padding is dropped).
``terrain_counters(terrain, metric, value)``
    Numeric leaves of :meth:`~repro.serving.service.OracleService.
    stats`, dotted-path metric names (``paging.peak_resident_bytes``).

Canned views
------------
``error_stats``
    One-row integrity/error panel: pair counts, self-pair zero-
    distance violations (must be 0), distance extrema, the ε budget.
``pair_count_by_layer``
    Pairs grouped by the source node's tree layer, with distance
    min/mean/max — the layer histogram behind the size model.
``poi_coverage``
    Per POI: occupied chain layers and the number of stored pairs
    whose source node lies on the POI's chain — exactly the candidate
    set a batched probe scans from that source.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..core.store import PathLike, section_layouts

__all__ = ["mirror_store", "mirror_service_stats", "run_view",
           "run_sql", "CANNED_VIEWS"]

_SCHEMA = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT);
CREATE TABLE tree_nodes (
    node_id INTEGER PRIMARY KEY, center INTEGER, layer INTEGER,
    parent INTEGER, origin INTEGER, radius REAL);
CREATE TABLE pairs (
    pair_index INTEGER PRIMARY KEY, source_node INTEGER,
    target_node INTEGER, distance REAL);
CREATE TABLE chains (poi INTEGER, layer INTEGER, node INTEGER);
CREATE TABLE terrain_counters (
    terrain TEXT, metric TEXT, value REAL);
CREATE INDEX pairs_source ON pairs (source_node);
CREATE INDEX chains_node ON chains (node);
"""

_VIEWS = {
    "error_stats": """
CREATE VIEW error_stats AS SELECT
    (SELECT COUNT(*) FROM pairs) AS pairs,
    (SELECT COUNT(*) FROM pairs
        WHERE source_node = target_node) AS self_pairs,
    (SELECT COUNT(*) FROM pairs
        WHERE source_node = target_node
          AND distance != 0.0) AS nonzero_self_distances,
    (SELECT MIN(distance) FROM pairs
        WHERE source_node != target_node) AS min_cross_distance,
    (SELECT AVG(distance) FROM pairs) AS mean_distance,
    (SELECT MAX(distance) FROM pairs) AS max_distance,
    (SELECT value FROM meta WHERE key = 'epsilon') AS epsilon
""",
    "pair_count_by_layer": """
CREATE VIEW pair_count_by_layer AS
SELECT t.layer AS layer, COUNT(*) AS pairs,
       MIN(p.distance) AS min_distance,
       AVG(p.distance) AS mean_distance,
       MAX(p.distance) AS max_distance
FROM pairs p JOIN tree_nodes t ON t.node_id = p.source_node
GROUP BY t.layer ORDER BY t.layer
""",
    "poi_coverage": """
CREATE VIEW poi_coverage AS
SELECT c.poi AS poi,
       COUNT(DISTINCT c.layer) AS chain_layers,
       COUNT(p.pair_index) AS covering_pairs
FROM chains c LEFT JOIN pairs p ON p.source_node = c.node
GROUP BY c.poi ORDER BY c.poi
""",
}

#: Names accepted by :func:`run_view` and ``repro analyze --view``.
CANNED_VIEWS = tuple(_VIEWS)

_PAIR_SHIFT = np.uint64(32)
_PAIR_MASK = np.uint64(0xFFFFFFFF)


def _flat_meta(meta: Dict[str, Any], prefix: str = ""
               ) -> Iterable[Tuple[str, str]]:
    for key, value in meta.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            yield from _flat_meta(value, prefix=name + ".")
        else:
            yield name, json.dumps(value)


def _read_rows(handle, layout, start: int, count: int) -> np.ndarray:
    """``count`` rows of a section starting at row ``start``."""
    offset, dtype, shape = layout
    row_items = int(np.prod(shape[1:], dtype=np.int64)) if len(
        shape) > 1 else 1
    handle.seek(offset + start * row_items * dtype.itemsize)
    raw = handle.read(count * row_items * dtype.itemsize)
    return np.frombuffer(raw, dtype=dtype).reshape(
        (count,) + tuple(shape[1:]))


def mirror_store(store_path: PathLike,
                 db_path: PathLike,
                 chunk_rows: int = 8192,
                 service_stats: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """Mirror a monolithic v4 store into a fresh sqlite3 database.

    ``db_path`` is replaced if it exists.  The pair and chain columns
    stream through in ``chunk_rows``-row slices read straight from the
    section offsets — resident memory stays O(chunk), not O(#pairs).
    ``service_stats`` optionally mirrors an
    :meth:`~repro.serving.service.OracleService.stats` report into
    ``terrain_counters``.  Returns a report of per-table row counts.
    """
    meta, layouts = section_layouts(store_path)
    if "tiles" in meta:
        raise ValueError(
            f"{store_path}: tiled stores are not mirrorable yet; "
            "mirror the per-tile stores instead")
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be positive")
    db_path = os.fspath(db_path)
    if os.path.exists(db_path):
        os.unlink(db_path)
    connection = sqlite3.connect(db_path)
    try:
        connection.executescript(_SCHEMA)
        for statement in _VIEWS.values():
            connection.execute(statement)
        connection.executemany(
            "INSERT INTO meta VALUES (?, ?)", list(_flat_meta(meta)))

        with open(store_path, "rb") as handle:
            table = _read_rows(handle, layouts["tree_table"], 0,
                               layouts["tree_table"][2][0])
            radii = _read_rows(handle, layouts["tree_radii"], 0,
                               layouts["tree_radii"][2][0])
            connection.executemany(
                "INSERT INTO tree_nodes VALUES (?, ?, ?, ?, ?, ?)",
                ((node_id, *map(int, row), float(radius))
                 for node_id, (row, radius)
                 in enumerate(zip(table.tolist(), radii.tolist()))))

            num_pairs = layouts["pair_keys"][2][0]
            for start in range(0, num_pairs, chunk_rows):
                count = min(chunk_rows, num_pairs - start)
                keys = _read_rows(handle, layouts["pair_keys"],
                                  start, count)
                distances = _read_rows(
                    handle, layouts["pair_distances"], start, count)
                sources = (keys >> _PAIR_SHIFT).astype(np.int64)
                targets = (keys & _PAIR_MASK).astype(np.int64)
                connection.executemany(
                    "INSERT INTO pairs VALUES (?, ?, ?, ?)",
                    zip(range(start, start + count), sources.tolist(),
                        targets.tolist(), distances.tolist()))

            num_pois = layouts["chains"][2][0]
            for start in range(0, num_pois, chunk_rows):
                count = min(chunk_rows, num_pois - start)
                chunk = _read_rows(handle, layouts["chains"],
                                   start, count)
                pois, list_layers = np.nonzero(chunk != -1)
                connection.executemany(
                    "INSERT INTO chains VALUES (?, ?, ?)",
                    zip((pois + start).tolist(), list_layers.tolist(),
                        chunk[pois, list_layers].tolist()))

        if service_stats:
            mirror_service_stats(connection, service_stats)
        connection.commit()
        report = {"db_path": db_path, "views": list(CANNED_VIEWS),
                  "tables": {}}
        for table_name in ("meta", "tree_nodes", "pairs", "chains",
                           "terrain_counters"):
            (count,), = connection.execute(
                f"SELECT COUNT(*) FROM {table_name}")  # noqa: S608
            report["tables"][table_name] = count
        return report
    finally:
        connection.close()


def mirror_service_stats(connection: sqlite3.Connection,
                         stats: Dict[str, Dict[str, Any]]) -> int:
    """Insert the numeric leaves of a service ``stats()`` report.

    Nested ledgers flatten to dotted metric paths
    (``paging.peak_resident_bytes``, ``tiles.loads`` …); non-numeric
    leaves (paths, flags-as-strings) are skipped.  Returns the number
    of counter rows inserted.
    """
    rows: List[Tuple[str, str, float]] = []

    def walk(terrain: str, prefix: str, value: Any) -> None:
        if isinstance(value, dict):
            for key, child in value.items():
                walk(terrain, f"{prefix}.{key}" if prefix else str(key),
                     child)
        elif isinstance(value, bool):
            rows.append((terrain, prefix, float(value)))
        elif isinstance(value, (int, float)):
            rows.append((terrain, prefix, float(value)))

    for terrain, entry in stats.items():
        walk(terrain, "", entry)
    connection.executemany(
        "INSERT INTO terrain_counters VALUES (?, ?, ?)", rows)
    return len(rows)


def run_view(db_path: PathLike, view: str
             ) -> Tuple[List[str], List[Tuple[Any, ...]]]:
    """Rows of one canned view: ``(column_names, rows)``."""
    if view not in _VIEWS:
        raise ValueError(
            f"unknown view {view!r}; canned views: {CANNED_VIEWS}")
    return run_sql(db_path, f"SELECT * FROM {view}")  # noqa: S608


def run_sql(db_path: PathLike, sql: str
            ) -> Tuple[List[str], List[Tuple[Any, ...]]]:
    """Run one (read-only) SQL statement against a mirror database."""
    connection = sqlite3.connect(
        f"file:{os.fspath(db_path)}?mode=ro", uri=True)
    try:
        cursor = connection.execute(sql)
        columns = [name for name, *_ in cursor.description or []]
        return columns, cursor.fetchall()
    finally:
        connection.close()
