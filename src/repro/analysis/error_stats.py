"""Approximation-error measurement (the "error" panel of Figure 8).

The paper evaluates every oracle by the relative error of its answers
against the exact geodesic distance, reporting that observed errors sit
far below the ε bound (about ε/10).  :func:`measure_errors` compares
any oracle against ground-truth distances over a query workload and
summarises mean / max / percentile errors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

__all__ = ["ErrorStats", "measure_errors", "relative_error"]

QueryPair = Tuple[int, int]


def relative_error(approx: float, exact: float) -> float:
    """``|approx - exact| / exact`` with a zero-distance guard."""
    if exact == 0.0:
        return 0.0 if approx == 0.0 else math.inf
    return abs(approx - exact) / exact


@dataclass
class ErrorStats:
    """Distribution summary of relative errors over a workload."""

    count: int
    mean: float
    max: float
    p50: float
    p95: float

    def within_bound(self, epsilon: float) -> bool:
        """Whether every observed error respects the ε guarantee."""
        return self.max <= epsilon * (1 + 1e-9)


def measure_errors(approx_of: Callable[[int, int], float],
                   exact_of: Callable[[int, int], float],
                   pairs: Sequence[QueryPair]) -> ErrorStats:
    """Evaluate ``approx_of`` against ``exact_of`` over query pairs."""
    if not pairs:
        raise ValueError("empty query workload")
    errors: List[float] = []
    for source, target in pairs:
        errors.append(relative_error(approx_of(source, target),
                                     exact_of(source, target)))
    errors.sort()
    count = len(errors)

    def percentile(fraction: float) -> float:
        index = min(count - 1, max(0, math.ceil(fraction * count) - 1))
        return errors[index]

    return ErrorStats(
        count=count,
        mean=sum(errors) / count,
        max=errors[-1],
        p50=percentile(0.50),
        p95=percentile(0.95),
    )
