"""Analysis: capacity dimension (Appendix A), error statistics, and
the SQL analytics mirror (``repro analyze``)."""

from .capacity_dimension import (
    CapacityDimensionEstimate,
    estimate_capacity_dimension,
    greedy_packing_number,
)
from .error_stats import ErrorStats, measure_errors, relative_error
from .sqlmirror import (
    CANNED_VIEWS,
    mirror_service_stats,
    mirror_store,
    run_sql,
    run_view,
)

__all__ = [
    "CapacityDimensionEstimate",
    "estimate_capacity_dimension",
    "greedy_packing_number",
    "ErrorStats",
    "measure_errors",
    "relative_error",
    "CANNED_VIEWS",
    "mirror_store",
    "mirror_service_stats",
    "run_view",
    "run_sql",
]
