"""Analysis: capacity dimension (Appendix A) and error statistics."""

from .capacity_dimension import (
    CapacityDimensionEstimate,
    estimate_capacity_dimension,
    greedy_packing_number,
)
from .error_stats import ErrorStats, measure_errors, relative_error

__all__ = [
    "CapacityDimensionEstimate",
    "estimate_capacity_dimension",
    "greedy_packing_number",
    "ErrorStats",
    "measure_errors",
    "relative_error",
]
