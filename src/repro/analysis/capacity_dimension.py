"""Largest capacity dimension estimation (Appendix A).

The oracle's complexity bounds are parameterised by β, the *largest
capacity dimension* of the POI set under the geodesic metric:

    β = max over balls B(p, r) of
        0.5 * log2( M(r/2, B(p, r)) / M(2r, B(p, r)) )

where ``M(r, S)`` is the r-packing number of ``S`` (the maximum size of
an r-separated subset).  Appendix A argues ``M(2r, B(p, r)) = 2`` and
measures β in [1.3, 1.5] on the benchmark terrains; we estimate packing
numbers with the standard greedy 2-approximation (greedy maximal
r-separated subsets), evaluated over sampled centres and a radius
ladder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..geodesic.engine import GeodesicEngine

__all__ = ["CapacityDimensionEstimate", "greedy_packing_number",
           "estimate_capacity_dimension"]


@dataclass
class CapacityDimensionEstimate:
    """Result of :func:`estimate_capacity_dimension`."""

    beta: float                       # the max over all probed balls
    per_ball: List[float]             # individual ball dimensions
    num_balls: int
    radii_probed: int

    def summary(self) -> str:
        if not self.per_ball:
            return "no balls probed"
        mean = sum(self.per_ball) / len(self.per_ball)
        return (f"beta={self.beta:.2f} (mean ball dimension {mean:.2f}, "
                f"{self.num_balls} balls)")


def greedy_packing_number(distance_of: Dict[int, float],
                          pairwise: Dict[int, Dict[int, float]],
                          members: Sequence[int],
                          separation: float) -> int:
    """Greedy maximal ``separation``-separated subset size of ``members``.

    ``pairwise[i][j]`` gives the geodesic distance between POIs; greedy
    insertion yields a maximal separated set, a 2-approximation of the
    packing number — sufficient for a log-scale dimension estimate.
    """
    chosen: List[int] = []
    for candidate in sorted(members, key=lambda m: distance_of[m]):
        if all(pairwise[candidate][existing] >= separation
               for existing in chosen):
            chosen.append(candidate)
    return len(chosen)


def estimate_capacity_dimension(engine: GeodesicEngine,
                                num_centers: int = 8,
                                radius_steps: int = 4,
                                seed: int = 0
                                ) -> CapacityDimensionEstimate:
    """Estimate β over sampled balls and a ladder of radii.

    For each sampled centre ``p`` and each radius ``r`` in a geometric
    ladder, compute the ball ``B(p, r)``, the packing numbers at
    separations ``r/2`` and ``2r``, and the Definition 1 dimension
    ``0.5 log2(M(r/2)/M(2r))``.  β is the maximum over all probes.
    """
    import random

    n = engine.num_pois
    if n < 3:
        raise ValueError("need at least 3 POIs to estimate a dimension")
    rng = random.Random(seed)
    centers = rng.sample(range(n), min(num_centers, n))

    # Full rows for every POI we will ever compare (centres + members).
    rows: Dict[int, Dict[int, float]] = {}

    def row(poi: int) -> Dict[int, float]:
        if poi not in rows:
            rows[poi] = engine.distances_from_poi(poi)
        return rows[poi]

    per_ball: List[float] = []
    probes = 0
    for center in centers:
        from_center = row(center)
        reach = max(from_center.values())
        if reach <= 0:
            continue
        for step in range(1, radius_steps + 1):
            radius = reach * step / radius_steps
            members = [poi for poi, dist in from_center.items()
                       if dist <= radius]
            if len(members) < 3:
                continue
            probes += 1
            for member in members:
                row(member)
            tight = greedy_packing_number(from_center, rows, members,
                                          radius / 2.0)
            loose = greedy_packing_number(from_center, rows, members,
                                          2.0 * radius)
            loose = max(loose, 1)
            if tight <= loose:
                continue
            per_ball.append(0.5 * math.log2(tight / loose))

    beta = max(per_ball) if per_ball else 0.0
    return CapacityDimensionEstimate(beta=beta, per_ball=per_ball,
                                     num_balls=len(centers),
                                     radii_probed=probes)
