"""Flat CSR (compressed sparse row) graph core with a dynamic overlay.

``CSRGraph`` is the adjacency substrate every shortest-path search in
this repository runs on.  It has two sections:

* a **frozen static section** — the mesh vertices and Steiner points
  (and, after :meth:`~repro.geodesic.graph.GeodesicGraph.attach_pois`
  refreezes, the POI sites too) stored as three parallel NumPy arrays:
  ``indptr`` (``int64``), ``indices`` (``int32``) and ``weights``
  (``float64``), the classic CSR layout;
* a small **dynamic overlay** for sites attached after the freeze
  (transient A2A query points, dynamic-oracle inserts).  Overlay nodes
  keep per-node adjacency lists; edges *back* from static nodes into
  the overlay live in a side table consulted only when the overlay is
  non-empty.

The NumPy arrays are the canonical storage: the SciPy-backed fast path
of the Dijkstra kernel hands them to ``scipy.sparse.csgraph`` wholesale
(see :meth:`scipy_matrix`), and the exact ``frontier_min``
reconstruction gathers over them vectorised.  The *pure-Python* kernel
(targets / single-target / parents modes, or overlay present) instead
iterates prebuilt per-node ``(neighbor, weight)`` tuple rows — CPython
pays ~5x for boxed elementwise NumPy access, so the hot loop reads
:meth:`kernel_view`'s list form.  Both views are frozen from the same
data.

The graph also owns a pool of :class:`DijkstraScratch` buffers —
preallocated distance / parent / label arrays the search kernel reuses
across calls instead of allocating per-call dicts.  Generation
stamping makes clearing them O(1): a slot is valid only when its stamp
equals the current generation, so "resetting" is one counter increment.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["CSRGraph", "DijkstraScratch"]

Row = List[Tuple[int, float]]


class DijkstraScratch:
    """Reusable per-search buffers, generation-stamped for O(1) reset.

    ``dist[v]`` / ``parent[v]`` are meaningful only when
    ``label[v] == gen``; the bidirectional kernel additionally marks
    settledness in ``settled``.  A new search calls
    :meth:`next_generation` instead of clearing.  The buffers are plain
    Python lists: the kernel reads and writes them elementwise millions
    of times, where list access beats both dict hashing and boxed NumPy
    scalar access.
    """

    __slots__ = ("dist", "parent", "label", "settled", "gen", "capacity")

    def __init__(self, capacity: int):
        self.capacity = max(capacity, 1)
        self.dist: List[float] = [0.0] * self.capacity
        self.parent: List[int] = [-1] * self.capacity
        self.label: List[int] = [0] * self.capacity
        self.settled: List[int] = [0] * self.capacity
        self.gen = 0

    def ensure(self, capacity: int) -> None:
        if capacity > self.capacity:
            grow = capacity - self.capacity
            self.dist.extend([0.0] * grow)
            self.parent.extend([-1] * grow)
            self.label.extend([0] * grow)
            self.settled.extend([0] * grow)
            self.capacity = capacity

    def next_generation(self) -> int:
        self.gen += 1
        return self.gen


class CSRGraph:
    """Undirected weighted graph: frozen CSR arrays + dynamic overlay.

    Build one with :meth:`from_lists`; the list-of-lists adjacency is
    frozen into the static section.  Later nodes enter through
    :meth:`attach_node` (overlay) and leave LIFO via
    :meth:`detach_last`.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 weights: np.ndarray):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        if self.indptr.ndim != 1 or len(self.indptr) == 0:
            raise ValueError("indptr must be a non-empty 1-D array")
        if len(self.indices) != len(self.weights):
            raise ValueError("indices and weights must be parallel")
        if int(self.indptr[-1]) != len(self.indices):
            raise ValueError("indptr[-1] must equal the entry count")
        # Per-node (neighbor, weight) rows for the pure-Python kernel,
        # materialised lazily: graphs that only ever take the SciPy
        # fast path never pay the O(E) tuple build.
        self._rows: Optional[List[Row]] = None
        # Dynamic overlay (nodes with id >= num_static).
        self._ov_rows: List[Row] = []
        # Static node -> edges into the overlay.
        self._extra: Dict[int, Row] = {}
        self._scratch_pool: List[DijkstraScratch] = []
        self._scipy_matrix = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_lists(cls, neighbors: Iterable[Iterable[int]],
                   weights: Iterable[Iterable[float]]) -> "CSRGraph":
        """Freeze a ``(neighbors, weights)`` list-of-lists adjacency."""
        neighbors = list(neighbors)
        weights = list(weights)
        if len(neighbors) != len(weights):
            raise ValueError("neighbors and weights must be parallel")
        indptr = np.zeros(len(neighbors) + 1, dtype=np.int64)
        for node, row in enumerate(neighbors):
            indptr[node + 1] = indptr[node] + len(row)
        total = int(indptr[-1])
        indices = np.empty(total, dtype=np.int32)
        flat_weights = np.empty(total, dtype=np.float64)
        cursor = 0
        for row, row_weights in zip(neighbors, weights):
            step = len(row)
            indices[cursor:cursor + step] = row
            flat_weights[cursor:cursor + step] = row_weights
            cursor += step
        return cls(indptr, indices, flat_weights)

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def num_static(self) -> int:
        """Nodes in the frozen section (ids below this are static)."""
        return len(self.indptr) - 1

    @property
    def num_overlay(self) -> int:
        return len(self._ov_rows)

    @property
    def num_nodes(self) -> int:
        return self.num_static + len(self._ov_rows)

    @property
    def num_entries(self) -> int:
        """Directed adjacency entries (static + overlay, both ways)."""
        overlay = sum(len(row) for row in self._ov_rows)
        extra = sum(len(row) for row in self._extra.values())
        return len(self.indices) + overlay + extra

    # ------------------------------------------------------------------
    # overlay mutation
    # ------------------------------------------------------------------
    def attach_node(self, neighbors: Iterable[int],
                    weights: Iterable[float]) -> int:
        """Append an overlay node with the given (undirected) edges."""
        node = self.num_nodes
        row: Row = [(int(v), float(w)) for v, w in zip(neighbors, weights)]
        static_n = self.num_static
        self._ov_rows.append(row)
        for other, weight in row:
            if other < static_n:
                self._extra.setdefault(other, []).append((node, weight))
            else:
                self._ov_rows[other - static_n].append((node, weight))
        return node

    def detach_last(self) -> None:
        """Remove the most recently attached overlay node."""
        if not self._ov_rows:
            raise ValueError("no overlay nodes to detach")
        node = self.num_nodes - 1
        static_n = self.num_static
        row = self._ov_rows.pop()
        for other, _ in row:
            if other < static_n:
                back = self._extra[other]
            else:
                back = self._ov_rows[other - static_n]
            for position, (neighbor, _) in enumerate(back):
                if neighbor == node:
                    back.pop(position)
                    break
            if other < static_n and not back:
                del self._extra[other]

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> Tuple[List[int], List[float]]:
        """``(neighbors, weights)`` of one node (fresh lists)."""
        static_n = self.num_static
        if node >= static_n:
            row = self._ov_rows[node - static_n]
        else:
            row = self._static_rows()[node] + self._extra.get(node, [])
        return [v for v, _ in row], [w for _, w in row]

    def _static_rows(self) -> List[Row]:
        if self._rows is None:
            indices_l = self.indices.tolist()
            weights_l = self.weights.tolist()
            indptr_l = self.indptr.tolist()
            self._rows = [
                list(zip(indices_l[indptr_l[i]:indptr_l[i + 1]],
                         weights_l[indptr_l[i]:indptr_l[i + 1]]))
                for i in range(len(indptr_l) - 1)
            ]
        return self._rows

    def kernel_view(self):
        """The pieces the pure-Python search kernel iterates.

        Returns ``(rows, static_n, overlay_rows, extra)`` where every
        row is a list of ``(neighbor, weight)`` tuples and ``extra``
        maps static node ids to their overlay back-edges.
        """
        return (self._static_rows(), self.num_static, self._ov_rows,
                self._extra)

    def scipy_matrix(self):
        """The static section as a cached ``scipy.sparse.csr_matrix``.

        Returns ``None`` when SciPy is unavailable or the overlay is
        non-empty (the matrix would miss its nodes).  Explicit
        zero-weight entries survive the ``(data, indices, indptr)``
        construction and ``csgraph.dijkstra`` honours them as
        zero-length edges (pinned by an equivalence test).
        """
        if self._ov_rows:
            return None
        if self._scipy_matrix is None:
            try:
                from scipy.sparse import csr_matrix
            except ImportError:  # pragma: no cover - scipy is optional
                return None
            n = self.num_static
            self._scipy_matrix = csr_matrix(
                (self.weights, self.indices, self.indptr), shape=(n, n))
        return self._scipy_matrix

    # ------------------------------------------------------------------
    # scratch pool
    # ------------------------------------------------------------------
    def acquire_scratch(self) -> DijkstraScratch:
        """Borrow a scratch buffer sized for the current node count."""
        if self._scratch_pool:
            scratch = self._scratch_pool.pop()
        else:
            scratch = DijkstraScratch(self.num_nodes)
        scratch.ensure(self.num_nodes)
        return scratch

    def release_scratch(self, scratch: DijkstraScratch) -> None:
        """Return a borrowed scratch buffer to the pool."""
        self._scratch_pool.append(scratch)
