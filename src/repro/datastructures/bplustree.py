"""A B+-tree over integer/float keys with optional values.

Section 3.2 (Implementation Detail 1) of the paper indexes "all point IDs
in each cell ... in a B+-tree" for the greedy point-selection strategy,
removing points as they get covered.  This module provides that substrate
as a full, self-contained B+-tree: sorted keys in the leaves, leaf
chaining for range scans, insertion with node splits and deletion with
borrow/merge rebalancing.

The tree maps keys to values (``insert(key, value)``); duplicate keys are
rejected, mirroring the paper's use (point IDs are unique).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["BPlusTree"]


class _Node:
    """A B+-tree node; ``leaf`` nodes carry values, internal ones children."""

    __slots__ = ("leaf", "keys", "children", "values", "next")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.keys: List[Any] = []
        self.children: List["_Node"] = []  # internal nodes only
        self.values: List[Any] = []  # leaf nodes only
        self.next: Optional["_Node"] = None  # leaf chaining

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "Leaf" if self.leaf else "Node"
        return f"<{kind} keys={self.keys}>"


class BPlusTree:
    """A B+-tree with order (fan-out) ``order``.

    Internal nodes hold at most ``order`` children; leaves hold at most
    ``order - 1`` keys.  Supports ``insert``, ``delete``, ``get``,
    ``__contains__``, in-order iteration and ``range_search``.

    Example
    -------
    >>> tree = BPlusTree(order=4)
    >>> for key in [5, 1, 9, 3]:
    ...     tree.insert(key, str(key))
    >>> list(tree)
    [1, 3, 5, 9]
    >>> tree.range_search(2, 6)
    [(3, '3'), (5, '5')]
    """

    def __init__(self, order: int = 16):
        if order < 3:
            raise ValueError("B+-tree order must be at least 3")
        self._order = order
        self._root: _Node = _Node(leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        leaf = self._find_leaf(key)
        return key in leaf.keys

    def __iter__(self) -> Iterator[Any]:
        """Yield all keys in ascending order (via the leaf chain)."""
        node = self._leftmost_leaf()
        while node is not None:
            yield from node.keys
            node = node.next

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield all ``(key, value)`` pairs in ascending key order."""
        node = self._leftmost_leaf()
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    @property
    def order(self) -> int:
        return self._order

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value stored under ``key`` or ``default``."""
        leaf = self._find_leaf(key)
        index = _bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def min_key(self) -> Any:
        """Smallest key; raises ``KeyError`` on an empty tree."""
        if not self._size:
            raise KeyError("min_key on empty tree")
        return self._leftmost_leaf().keys[0]

    def max_key(self) -> Any:
        """Largest key; raises ``KeyError`` on an empty tree."""
        if not self._size:
            raise KeyError("max_key on empty tree")
        node = self._root
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1]

    def range_search(self, low: Any, high: Any) -> List[Tuple[Any, Any]]:
        """Return all ``(key, value)`` with ``low <= key <= high``."""
        result: List[Tuple[Any, Any]] = []
        node = self._find_leaf(low)
        while node is not None:
            for key, value in zip(node.keys, node.values):
                if key > high:
                    return result
                if key >= low:
                    result.append((key, value))
            node = node.next
        return result

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any = None) -> None:
        """Insert ``key`` with ``value``; raises ``KeyError`` on duplicates."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Node(leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node: _Node, key: Any, value: Any):
        if node.leaf:
            index = _bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                raise KeyError(f"duplicate key: {key!r}")
            node.keys.insert(index, key)
            node.values.insert(index, value)
            if len(node.keys) >= self._order:
                return self._split_leaf(node)
            return None
        index = _child_index(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.children) > self._order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return separator, right

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, key: Any) -> Any:
        """Remove ``key``; returns its value.  Raises ``KeyError`` if absent."""
        value = self._delete(self._root, key)
        if not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
        self._size -= 1
        return value

    def _min_keys(self, node: _Node) -> int:
        if node is self._root:
            return 1 if node.leaf else 0
        if node.leaf:
            return (self._order - 1) // 2
        return (self._order + 1) // 2 - 1  # min children - 1

    def _delete(self, node: _Node, key: Any) -> Any:
        if node.leaf:
            index = _bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                raise KeyError(f"key not found: {key!r}")
            node.keys.pop(index)
            return node.values.pop(index)
        index = _child_index(node.keys, key)
        child = node.children[index]
        value = self._delete(child, key)
        if self._deficient(child):
            self._rebalance(node, index)
        return value

    def _deficient(self, node: _Node) -> bool:
        if node is self._root:
            return False
        if node.leaf:
            return len(node.keys) < (self._order - 1) // 2
        return len(node.children) < (self._order + 1) // 2

    def _rebalance(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        left = parent.children[index - 1] if index > 0 else None
        right = parent.children[index + 1] if index + 1 < len(parent.children) else None

        if left is not None and self._can_lend(left):
            self._borrow_from_left(parent, index, left, child)
        elif right is not None and self._can_lend(right):
            self._borrow_from_right(parent, index, child, right)
        elif left is not None:
            self._merge(parent, index - 1, left, child)
        else:
            assert right is not None
            self._merge(parent, index, child, right)

    def _can_lend(self, node: _Node) -> bool:
        if node.leaf:
            return len(node.keys) > (self._order - 1) // 2
        return len(node.children) > (self._order + 1) // 2

    def _borrow_from_left(self, parent, index, left, child) -> None:
        if child.leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent, index, child, right) -> None:
        if child.leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent, sep_index, left, right) -> None:
        """Merge ``right`` into ``left``; both are children of ``parent``."""
        if left.leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            left.keys.append(parent.keys[sep_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(sep_index)
        parent.children.pop(sep_index + 1)

    # ------------------------------------------------------------------
    # internals / diagnostics
    # ------------------------------------------------------------------
    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.leaf:
            node = node.children[_child_index(node.keys, key)]
        return node

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        return node

    def height(self) -> int:
        """Number of levels (a single leaf root has height 1)."""
        height = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            height += 1
        return height

    def check_invariants(self) -> None:
        """Assert structural invariants (for tests)."""
        keys = list(self)
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(keys) == self._size, "size out of sync"
        assert len(set(keys)) == len(keys), "duplicate keys"
        self._check_node(self._root, None, None, depth=0,
                         leaf_depth=[None])

    def _check_node(self, node, low, high, depth, leaf_depth) -> None:
        for key in node.keys:
            if low is not None:
                assert key >= low, "key below subtree lower bound"
            if high is not None:
                assert key < high or node.leaf and key <= high, (
                    "key above subtree upper bound"
                )
        assert node.keys == sorted(node.keys), "node keys unsorted"
        if node.leaf:
            assert len(node.keys) == len(node.values)
            if leaf_depth[0] is None:
                leaf_depth[0] = depth
            assert leaf_depth[0] == depth, "leaves at unequal depths"
            if node is not self._root:
                assert len(node.keys) >= (self._order - 1) // 2, "leaf underflow"
            return
        assert len(node.children) == len(node.keys) + 1
        if node is not self._root:
            assert len(node.children) >= (self._order + 1) // 2, "node underflow"
        assert len(node.children) <= self._order, "node overflow"
        bounds = [low, *node.keys, high]
        for i, child in enumerate(node.children):
            self._check_node(child, bounds[i], bounds[i + 1],
                             depth + 1, leaf_depth)


def _bisect_left(keys: List[Any], key: Any) -> int:
    """Leftmost index where ``key`` could be inserted keeping order."""
    low, high = 0, len(keys)
    while low < high:
        mid = (low + high) // 2
        if keys[mid] < key:
            low = mid + 1
        else:
            high = mid
    return low


def _child_index(keys: List[Any], key: Any) -> int:
    """Index of the child subtree responsible for ``key``.

    Keys equal to a separator go to the right child, matching the leaf
    split rule (separator equals the first key of the right leaf).
    """
    low, high = 0, len(keys)
    while low < high:
        mid = (low + high) // 2
        if key < keys[mid]:
            high = mid
        else:
            low = mid + 1
    return low
