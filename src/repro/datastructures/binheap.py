"""Indexed binary heaps with decrease-key / increase-key support.

The paper's construction algorithm needs two priority queues:

* the SSAD (single-source all-destination) shortest-path search uses a
  *min*-heap keyed by tentative geodesic distance, with ``decrease_key``
  whenever a shorter path to a settled-candidate is found;
* the greedy point-selection strategy (Implementation Detail 1, Section
  3.2) uses a *max*-heap over grid cells keyed by the number of uncovered
  POIs in the cell, with the key decremented every time a point of the
  cell is covered.

Both are provided here on top of a single array-backed indexed heap.
Items may be any hashable objects; each item appears at most once.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional, Tuple

__all__ = ["IndexedMinHeap", "IndexedMaxHeap"]


class IndexedMinHeap:
    """An array-backed binary min-heap with O(log n) ``decrease_key``.

    The heap maps hashable *items* to float *keys*.  Unlike ``heapq`` it
    supports changing the key of an item already in the heap, which the
    SSAD search and the greedy grid both require.

    Example
    -------
    >>> heap = IndexedMinHeap()
    >>> heap.push("a", 3.0)
    >>> heap.push("b", 1.0)
    >>> heap.decrease_key("a", 0.5)
    >>> heap.pop()
    ('a', 0.5)
    """

    def __init__(self, items: Optional[Iterable[Tuple[Hashable, float]]] = None):
        self._keys: list[float] = []
        self._items: list[Hashable] = []
        self._pos: dict[Hashable, int] = {}
        if items is not None:
            for item, key in items:
                self.push(item, key)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._pos

    def __iter__(self) -> Iterator[Hashable]:
        """Iterate over items in arbitrary (heap) order."""
        return iter(list(self._items))

    def key_of(self, item: Hashable) -> float:
        """Return the current key of ``item``; raises ``KeyError`` if absent."""
        return self._keys[self._pos[item]]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def push(self, item: Hashable, key: float) -> None:
        """Insert a new item.  Raises ``ValueError`` on duplicates."""
        if item in self._pos:
            raise ValueError(f"item already in heap: {item!r}")
        self._items.append(item)
        self._keys.append(key)
        self._pos[item] = len(self._items) - 1
        self._sift_up(len(self._items) - 1)

    def push_or_update(self, item: Hashable, key: float) -> None:
        """Insert ``item`` or update its key (either direction)."""
        if item in self._pos:
            self.update_key(item, key)
        else:
            self.push(item, key)

    def pop(self) -> Tuple[Hashable, float]:
        """Remove and return the ``(item, key)`` pair with the minimum key."""
        if not self._items:
            raise IndexError("pop from empty heap")
        top_item = self._items[0]
        top_key = self._keys[0]
        self._remove_at(0)
        return top_item, top_key

    def peek(self) -> Tuple[Hashable, float]:
        """Return the minimum ``(item, key)`` pair without removing it."""
        if not self._items:
            raise IndexError("peek from empty heap")
        return self._items[0], self._keys[0]

    def remove(self, item: Hashable) -> float:
        """Remove an arbitrary item; returns its key."""
        index = self._pos[item]
        key = self._keys[index]
        self._remove_at(index)
        return key

    def decrease_key(self, item: Hashable, key: float) -> None:
        """Lower the key of ``item``.  Raises if the new key is larger."""
        index = self._pos[item]
        if key > self._keys[index]:
            raise ValueError(
                f"decrease_key with larger key: {key} > {self._keys[index]}"
            )
        self._keys[index] = key
        self._sift_up(index)

    def update_key(self, item: Hashable, key: float) -> None:
        """Set the key of ``item`` to any value, restoring heap order."""
        index = self._pos[item]
        old = self._keys[index]
        self._keys[index] = key
        if key < old:
            self._sift_up(index)
        elif key > old:
            self._sift_down(index)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _remove_at(self, index: int) -> None:
        last = len(self._items) - 1
        item = self._items[index]
        if index != last:
            self._swap(index, last)
        self._items.pop()
        self._keys.pop()
        del self._pos[item]
        if index < len(self._items):
            self._sift_down(index)
            self._sift_up(index)

    def _swap(self, i: int, j: int) -> None:
        self._items[i], self._items[j] = self._items[j], self._items[i]
        self._keys[i], self._keys[j] = self._keys[j], self._keys[i]
        self._pos[self._items[i]] = i
        self._pos[self._items[j]] = j

    def _sift_up(self, index: int) -> None:
        while index > 0:
            parent = (index - 1) >> 1
            if self._keys[index] < self._keys[parent]:
                self._swap(index, parent)
                index = parent
            else:
                break

    def _sift_down(self, index: int) -> None:
        size = len(self._items)
        while True:
            left = 2 * index + 1
            right = left + 1
            smallest = index
            if left < size and self._keys[left] < self._keys[smallest]:
                smallest = left
            if right < size and self._keys[right] < self._keys[smallest]:
                smallest = right
            if smallest == index:
                break
            self._swap(index, smallest)
            index = smallest

    def check_invariants(self) -> None:
        """Assert the heap property and index consistency (for tests)."""
        size = len(self._items)
        assert len(self._keys) == size
        assert len(self._pos) == size
        for index in range(1, size):
            parent = (index - 1) >> 1
            assert self._keys[parent] <= self._keys[index], (
                f"heap order violated at {index}"
            )
        for item, index in self._pos.items():
            assert self._items[index] == item, "position map out of sync"


class IndexedMaxHeap:
    """A max-heap facade over :class:`IndexedMinHeap` (keys negated).

    Used by the greedy selection strategy: cells are prioritised by the
    number of still-uncovered POIs they contain, and the key shrinks as
    points get covered (``increase_key`` going down in priority).
    """

    def __init__(self, items: Optional[Iterable[Tuple[Hashable, float]]] = None):
        self._heap = IndexedMinHeap()
        if items is not None:
            for item, key in items:
                self.push(item, key)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._heap

    def key_of(self, item: Hashable) -> float:
        return -self._heap.key_of(item)

    def push(self, item: Hashable, key: float) -> None:
        self._heap.push(item, -key)

    def push_or_update(self, item: Hashable, key: float) -> None:
        self._heap.push_or_update(item, -key)

    def pop(self) -> Tuple[Hashable, float]:
        item, key = self._heap.pop()
        return item, -key

    def peek(self) -> Tuple[Hashable, float]:
        item, key = self._heap.peek()
        return item, -key

    def remove(self, item: Hashable) -> float:
        return -self._heap.remove(item)

    def update_key(self, item: Hashable, key: float) -> None:
        self._heap.update_key(item, -key)

    def check_invariants(self) -> None:
        self._heap.check_invariants()
