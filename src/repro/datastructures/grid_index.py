"""Grid density index backing the greedy point-selection strategy.

Implementation Detail 1 of Section 3.2: for Layer ``i`` the greedy
strategy builds "a grid on the x-y plane with the cell width equal to
O(r0 / 2^i)", inserts the uncovered points into cells, indexes "all
point IDs in each cell in a B+-tree" and keeps "a max-heap containing
all non-empty cells whose keys are the sizes of their B+-trees".
Selecting a point means popping the densest cell and picking a point
from it; covering a point decrements its cell's key (and drops empty
cells from the heap).

This module wires those three substrates (:class:`~repro.datastructures.
bplustree.BPlusTree`, :class:`~repro.datastructures.binheap.
IndexedMaxHeap`) together behind a small API used by the tree builder.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, Optional, Tuple

from .binheap import IndexedMaxHeap
from .bplustree import BPlusTree

__all__ = ["GridDensityIndex"]

Cell = Tuple[int, int]


class GridDensityIndex:
    """Uniform x-y grid over point ids with density-ordered cell access.

    Parameters
    ----------
    points:
        ``{point_id: (x, y)}`` planar coordinates of the points to index.
    cell_width:
        Grid cell width; the paper uses ``O(r0 / 2^i)`` for Layer ``i``.
    rng:
        Source of randomness for picking a point within the densest cell.
    btree_order:
        Fan-out of the per-cell B+-trees.
    """

    def __init__(
        self,
        points: Dict[int, Tuple[float, float]],
        cell_width: float,
        rng: Optional[random.Random] = None,
        btree_order: int = 16,
    ):
        if cell_width <= 0 or not math.isfinite(cell_width):
            raise ValueError(f"cell_width must be positive, got {cell_width}")
        self._width = cell_width
        self._rng = rng if rng is not None else random.Random(0)
        self._btree_order = btree_order
        self._cells: Dict[Cell, BPlusTree] = {}
        self._cell_of: Dict[int, Cell] = {}
        self._heap = IndexedMaxHeap()
        for point_id, (x, y) in points.items():
            self.insert(point_id, x, y)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cell_of)

    def __bool__(self) -> bool:
        return bool(self._cell_of)

    def __contains__(self, point_id: int) -> bool:
        return point_id in self._cell_of

    @property
    def cell_width(self) -> float:
        return self._width

    def cell_of(self, x: float, y: float) -> Cell:
        """Grid cell containing planar coordinate ``(x, y)``."""
        return (math.floor(x / self._width), math.floor(y / self._width))

    def non_empty_cells(self) -> int:
        return len(self._cells)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, point_id: int, x: float, y: float) -> None:
        """Insert a point; raises ``ValueError`` on duplicate ids."""
        if point_id in self._cell_of:
            raise ValueError(f"duplicate point id: {point_id}")
        cell = self.cell_of(x, y)
        tree = self._cells.get(cell)
        if tree is None:
            tree = BPlusTree(order=self._btree_order)
            self._cells[cell] = tree
        tree.insert(point_id)
        self._cell_of[point_id] = cell
        self._heap.push_or_update(cell, len(tree))

    def remove(self, point_id: int) -> None:
        """Remove a covered point, decrementing its cell's heap key."""
        cell = self._cell_of.pop(point_id)
        tree = self._cells[cell]
        tree.delete(point_id)
        if tree:
            self._heap.update_key(cell, len(tree))
        else:
            del self._cells[cell]
            self._heap.remove(cell)

    def remove_all(self, point_ids: Iterable[int]) -> None:
        """Remove every id in ``point_ids`` that is still present."""
        for point_id in point_ids:
            if point_id in self._cell_of:
                self.remove(point_id)

    # ------------------------------------------------------------------
    # greedy selection
    # ------------------------------------------------------------------
    def densest_cell(self) -> Cell:
        """Cell currently containing the most points."""
        cell, _ = self._heap.peek()
        return cell

    def pick_from_densest(self) -> int:
        """Return a random point id from the densest cell (not removed)."""
        if not self._cell_of:
            raise IndexError("pick from empty index")
        cell = self.densest_cell()
        ids = list(self._cells[cell])
        return ids[self._rng.randrange(len(ids))]

    def check_invariants(self) -> None:
        """Assert cross-structure consistency (for tests)."""
        total = 0
        for cell, tree in self._cells.items():
            tree.check_invariants()
            assert len(tree) > 0, "empty cell retained"
            assert self._heap.key_of(cell) == len(tree), "heap key stale"
            total += len(tree)
        assert total == len(self._cell_of), "point count out of sync"
        for point_id, cell in self._cell_of.items():
            assert point_id in self._cells[cell], "cell map stale"
        self._heap.check_invariants()
