"""Data-structure substrates used by the SE oracle construction.

The paper leans on four classic structures, all implemented here from
scratch:

* :class:`~repro.datastructures.binheap.IndexedMinHeap` /
  :class:`~repro.datastructures.binheap.IndexedMaxHeap` — priority
  queues with key updates (SSAD search frontier, greedy cell heap);
* :class:`~repro.datastructures.bplustree.BPlusTree` — per-grid-cell
  point index of the greedy selection strategy;
* :class:`~repro.datastructures.perfect_hash.PerfectHashMap` — FKS
  two-level perfect hashing for node-pair and enhanced-edge lookup;
* :class:`~repro.datastructures.grid_index.GridDensityIndex` — the
  grid + B+-tree + max-heap combination of Implementation Detail 1.

On top of those, :class:`~repro.datastructures.csr.CSRGraph` is the
flat NumPy-backed adjacency substrate (frozen CSR core + dynamic site
overlay) every shortest-path search runs on.
"""

from .binheap import IndexedMaxHeap, IndexedMinHeap
from .bplustree import BPlusTree
from .csr import CSRGraph, DijkstraScratch
from .grid_index import GridDensityIndex
from .perfect_hash import PerfectHashMap, pack_pair, unpack_pair

__all__ = [
    "CSRGraph",
    "DijkstraScratch",
    "IndexedMinHeap",
    "IndexedMaxHeap",
    "BPlusTree",
    "GridDensityIndex",
    "PerfectHashMap",
    "pack_pair",
    "unpack_pair",
]
