"""FKS-style two-level perfect hashing for static key sets.

Section 3.3 of the paper indexes the node pair set with "the perfect
hashing scheme [7]" so that membership and the associated distance are
retrieved in O(1) worst-case time, with linear expected construction
time and linear space.  This module implements the classic
Fredman-Komlós-Szemerédi construction:

* level one hashes the ``n`` keys into ``n`` buckets with a random
  universal hash ``h(x) = ((a*x + b) mod p) mod n``;
* each bucket with ``b_i`` keys gets its own collision-free table of
  size ``b_i**2``, re-drawing its hash parameters until injective.

Keys are non-negative integers.  Node pairs ``(u, v)`` are packed into a
single integer before hashing (see :func:`pack_pair`).  A thin
dict-like wrapper :class:`PerfectHashMap` stores an arbitrary value per
key.

Construction is randomized but deterministic given ``seed``; the
expected total secondary-table size is < 2n (Σ b_i² concentration), so
we retry level one if an unlucky draw exceeds 4n.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["PerfectHashMap", "pack_pair", "unpack_pair"]

# A Mersenne prime comfortably above any packed key we produce.
_PRIME = (1 << 61) - 1

_PAIR_SHIFT = 32
_PAIR_MASK = (1 << _PAIR_SHIFT) - 1


def pack_pair(u: int, v: int) -> int:
    """Pack an ordered id pair into one integer key.

    Ids must fit in 32 bits, which comfortably covers every node id the
    oracle produces (node counts are O(n h)).
    """
    if not (0 <= u <= _PAIR_MASK and 0 <= v <= _PAIR_MASK):
        raise ValueError(f"pair ids out of range: ({u}, {v})")
    return (u << _PAIR_SHIFT) | v


def unpack_pair(key: int) -> Tuple[int, int]:
    """Inverse of :func:`pack_pair`."""
    return key >> _PAIR_SHIFT, key & _PAIR_MASK


class _Bucket:
    """Second-level table: collision-free within the bucket."""

    __slots__ = ("a", "b", "size", "slots")

    def __init__(self, a: int, b: int, size: int, slots: List[int]):
        self.a = a
        self.b = b
        self.size = size
        self.slots = slots  # slot -> index into the key/value arrays, or -1

    def locate(self, key: int) -> int:
        slot = ((self.a * key + self.b) % _PRIME) % self.size
        return self.slots[slot]


class PerfectHashMap:
    """A static map with O(1) worst-case lookups via FKS perfect hashing.

    Parameters
    ----------
    items:
        Iterable of ``(key, value)`` with distinct non-negative int keys.
    seed:
        Seed for the (re-drawable) universal hash parameters.

    Example
    -------
    >>> table = PerfectHashMap([(10, "x"), (99, "y")])
    >>> table[10]
    'x'
    >>> 7 in table
    False
    """

    _MAX_LEVEL1_RETRIES = 32
    _MAX_BUCKET_RETRIES = 256

    def __init__(self, items: Iterable[Tuple[int, Any]], seed: int = 0):
        pairs = list(items)
        self._keys: List[int] = [key for key, _ in pairs]
        self._values: List[Any] = [value for _, value in pairs]
        if len(set(self._keys)) != len(self._keys):
            raise ValueError("duplicate keys in PerfectHashMap")
        if any(key < 0 for key in self._keys):
            raise ValueError("keys must be non-negative integers")
        self._n = len(self._keys)
        self._rng = random.Random(seed)
        self._buckets: List[Optional[_Bucket]] = []
        self._a = 1
        self._b = 0
        if self._n:
            self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _draw(self) -> Tuple[int, int]:
        return self._rng.randrange(1, _PRIME), self._rng.randrange(0, _PRIME)

    def _build(self) -> None:
        n = self._n
        for _ in range(self._MAX_LEVEL1_RETRIES):
            self._a, self._b = self._draw()
            groups: Dict[int, List[int]] = {}
            for index, key in enumerate(self._keys):
                bucket_id = ((self._a * key + self._b) % _PRIME) % n
                groups.setdefault(bucket_id, []).append(index)
            total = sum(len(group) ** 2 for group in groups.values())
            if total <= 4 * n:
                break
        else:  # pragma: no cover - astronomically unlikely
            raise RuntimeError("perfect hash level-1 failed to converge")

        self._buckets = [None] * n
        for bucket_id, indices in groups.items():
            self._buckets[bucket_id] = self._build_bucket(indices)

    def _build_bucket(self, indices: Sequence[int]) -> _Bucket:
        size = max(1, len(indices) ** 2)
        for _ in range(self._MAX_BUCKET_RETRIES):
            a, b = self._draw()
            slots = [-1] * size
            ok = True
            for index in indices:
                slot = ((a * self._keys[index] + b) % _PRIME) % size
                if slots[slot] != -1:
                    ok = False
                    break
                slots[slot] = index
            if ok:
                return _Bucket(a, b, size, slots)
        raise RuntimeError(  # pragma: no cover - astronomically unlikely
            "perfect hash bucket failed to converge"
        )

    # ------------------------------------------------------------------
    # lookup protocol
    # ------------------------------------------------------------------
    def _locate(self, key: int) -> int:
        if self._n == 0 or key < 0:
            return -1
        bucket = self._buckets[((self._a * key + self._b) % _PRIME) % self._n]
        if bucket is None:
            return -1
        index = bucket.locate(key)
        if index != -1 and self._keys[index] == key:
            return index
        return -1

    def __contains__(self, key: int) -> bool:
        return self._locate(key) != -1

    def __getitem__(self, key: int) -> Any:
        index = self._locate(key)
        if index == -1:
            raise KeyError(key)
        return self._values[index]

    def get(self, key: int, default: Any = None) -> Any:
        index = self._locate(key)
        return self._values[index] if index != -1 else default

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(self._keys)

    def items(self) -> Iterator[Tuple[int, Any]]:
        return iter(zip(self._keys, self._values))

    # ------------------------------------------------------------------
    # size accounting (for the oracle's size model)
    # ------------------------------------------------------------------
    def slot_count(self) -> int:
        """Total number of second-level slots (the FKS space bound)."""
        return sum(bucket.size for bucket in self._buckets if bucket is not None)

    def size_bytes(self, value_bytes: int = 8) -> int:
        """Deterministic byte-count model: 8 bytes per slot/key + values."""
        return 8 * self.slot_count() + (8 + value_bytes) * self._n
