"""FKS-style two-level perfect hashing for static key sets.

Section 3.3 of the paper indexes the node pair set with "the perfect
hashing scheme [7]" so that membership and the associated distance are
retrieved in O(1) worst-case time, with linear expected construction
time and linear space.  This module implements the classic
Fredman-Komlós-Szemerédi construction:

* level one hashes the ``n`` keys into ``n`` buckets with a random
  universal hash ``h(x) = ((a*x + b) mod p) mod n``;
* each bucket with ``b_i`` keys gets its own collision-free table of
  size ``b_i**2``, re-drawing its hash parameters until injective.

Keys are non-negative integers.  Node pairs ``(u, v)`` are packed into a
single integer before hashing (see :func:`pack_pair`).  A thin
dict-like wrapper :class:`PerfectHashMap` stores an arbitrary value per
key.

Construction is randomized but deterministic given ``seed``; the
expected total secondary-table size is < 2n (Σ b_i² concentration), so
we retry level one if an unlucky draw exceeds 4n.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["PerfectHashMap", "pack_pair", "unpack_pair"]

# A Mersenne prime comfortably above any packed key we produce.
_PRIME = (1 << 61) - 1

_PAIR_SHIFT = 32
_PAIR_MASK = (1 << _PAIR_SHIFT) - 1


def pack_pair(u: int, v: int) -> int:
    """Pack an ordered id pair into one integer key.

    Ids must fit in 32 bits, which comfortably covers every node id the
    oracle produces (node counts are O(n h)).
    """
    if not (0 <= u <= _PAIR_MASK and 0 <= v <= _PAIR_MASK):
        raise ValueError(f"pair ids out of range: ({u}, {v})")
    return (u << _PAIR_SHIFT) | v


def unpack_pair(key: int) -> Tuple[int, int]:
    """Inverse of :func:`pack_pair`."""
    return key >> _PAIR_SHIFT, key & _PAIR_MASK


# ----------------------------------------------------------------------
# the frozen (batch-lookup) form
# ----------------------------------------------------------------------
# Batch lookups probe a *frozen* twin of the FKS structure: the same
# two-level perfect-hash topology, but with multiply-shift universal
# hashing — ``h_a(x) = (a * x mod 2^64) >> (64 - l)`` with odd ``a``
# into a power-of-two table (Dietzfelbinger et al.) — because a
# wrapping uint64 multiply plus a shift is two NumPy passes, whereas
# the scalar path's ``(a*x + b) mod (2^61 - 1)`` costs dozens of
# passes once big-int arithmetic is emulated overflow-free on uint64.
# The frozen tables are built once (lazily, seeded off the map's seed)
# and hold float64 values, so one probe resolves millions of keys with
# no Python per key.  Lookup results are identical to the scalar
# path's by construction: both address the same key/value arrays.

_FROZEN_FIELDS = ("keys", "values", "level2_a", "level2_shift",
                  "level2_offset", "slots")


class _FrozenTables:
    """Flat NumPy tables for vectorized probes (see module comment)."""

    __slots__ = ("level1_a", "level1_shift", *_FROZEN_FIELDS)

    def __init__(self, level1_a: int, level1_shift: int, **arrays):
        self.level1_a = np.uint64(level1_a)
        self.level1_shift = np.uint64(level1_shift)
        for name in _FROZEN_FIELDS:
            setattr(self, name, arrays[name])


class _Bucket:
    """Second-level table: collision-free within the bucket."""

    __slots__ = ("a", "b", "size", "slots")

    def __init__(self, a: int, b: int, size: int, slots: List[int]):
        self.a = a
        self.b = b
        self.size = size
        self.slots = slots  # slot -> index into the key/value arrays, or -1

    def locate(self, key: int) -> int:
        slot = ((self.a * key + self.b) % _PRIME) % self.size
        return self.slots[slot]


class PerfectHashMap:
    """A static map with O(1) worst-case lookups via FKS perfect hashing.

    Parameters
    ----------
    items:
        Iterable of ``(key, value)`` with distinct non-negative int keys.
    seed:
        Seed for the (re-drawable) universal hash parameters.

    Example
    -------
    >>> table = PerfectHashMap([(10, "x"), (99, "y")])
    >>> table[10]
    'x'
    >>> 7 in table
    False
    """

    _MAX_LEVEL1_RETRIES = 32
    _MAX_BUCKET_RETRIES = 256

    def __init__(self, items: Iterable[Tuple[int, Any]], seed: int = 0):
        pairs = list(items)
        self._keys: List[int] = [key for key, _ in pairs]
        self._values: List[Any] = [value for _, value in pairs]
        if len(set(self._keys)) != len(self._keys):
            raise ValueError("duplicate keys in PerfectHashMap")
        if any(key < 0 for key in self._keys):
            raise ValueError("keys must be non-negative integers")
        self._n = len(self._keys)
        self._seed = seed
        self._rng = random.Random(seed)
        self._buckets: List[Optional[_Bucket]] = []
        self._a = 1
        self._b = 0
        self._frozen: Optional[_FrozenTables] = None
        self._scalar_ready = True
        self._frozen_first = False
        if self._n:
            self._build()

    @classmethod
    def from_frozen(cls, keys, values, level1: Sequence[int], level2_a,
                    level2_shift, level2_offset, slots,
                    seed: int = 0) -> "PerfectHashMap":
        """Rehydrate a map from persisted frozen tables (zero-copy).

        ``keys``/``values``/``level2_*``/``slots`` are the arrays of
        :meth:`frozen_arrays` (possibly memory-mapped read-only) and
        ``level1`` the ``(level1_a, level1_shift)`` pair.  Batch lookups
        run straight off the supplied tables; the scalar FKS structures
        are rebuilt lazily on first scalar access — with the same
        ``seed`` and key order they come out identical to the original
        construction's.
        """
        self = cls.__new__(cls)
        keys = np.asarray(keys, dtype=np.uint64)
        values = np.asarray(values, dtype=np.float64)
        if keys.shape != values.shape or keys.ndim != 1:
            raise ValueError("keys and values must be aligned 1-D arrays")
        self._keys = keys  # materialised to lists by _ensure_scalar
        self._values = values
        self._n = int(keys.shape[0])
        self._seed = seed
        self._rng = random.Random(seed)
        self._buckets = []
        self._a = 1
        self._b = 0
        self._frozen = _FrozenTables(
            int(level1[0]), int(level1[1]),
            keys=keys, values=values,
            level2_a=np.asarray(level2_a, dtype=np.uint64),
            level2_shift=np.asarray(level2_shift, dtype=np.uint64),
            level2_offset=np.asarray(level2_offset, dtype=np.int64),
            slots=np.asarray(slots, dtype=np.int64),
        )
        self._scalar_ready = False
        self._frozen_first = True
        return self

    def _ensure_scalar(self) -> None:
        """Build the scalar FKS structures of a frozen-first map."""
        if self._scalar_ready:
            return
        self._keys = [int(key) for key in self._keys.tolist()]
        self._values = [float(value) for value in self._values.tolist()]
        self._rng = random.Random(self._seed)
        self._scalar_ready = True
        if self._n:
            self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _draw(self) -> Tuple[int, int]:
        return self._rng.randrange(1, _PRIME), self._rng.randrange(0, _PRIME)

    def _build(self) -> None:
        n = self._n
        for _ in range(self._MAX_LEVEL1_RETRIES):
            self._a, self._b = self._draw()
            groups: Dict[int, List[int]] = {}
            for index, key in enumerate(self._keys):
                bucket_id = ((self._a * key + self._b) % _PRIME) % n
                groups.setdefault(bucket_id, []).append(index)
            total = sum(len(group) ** 2 for group in groups.values())
            if total <= 4 * n:
                break
        else:  # pragma: no cover - astronomically unlikely
            raise RuntimeError("perfect hash level-1 failed to converge")

        self._buckets = [None] * n
        for bucket_id, indices in groups.items():
            self._buckets[bucket_id] = self._build_bucket(indices)

    def _build_bucket(self, indices: Sequence[int]) -> _Bucket:
        size = max(1, len(indices) ** 2)
        for _ in range(self._MAX_BUCKET_RETRIES):
            a, b = self._draw()
            slots = [-1] * size
            ok = True
            for index in indices:
                slot = ((a * self._keys[index] + b) % _PRIME) % size
                if slots[slot] != -1:
                    ok = False
                    break
                slots[slot] = index
            if ok:
                return _Bucket(a, b, size, slots)
        raise RuntimeError(  # pragma: no cover - astronomically unlikely
            "perfect hash bucket failed to converge"
        )

    # ------------------------------------------------------------------
    # lookup protocol
    # ------------------------------------------------------------------
    def _locate(self, key: int) -> int:
        if self._n == 0 or key < 0:
            return -1
        self._ensure_scalar()
        bucket = self._buckets[((self._a * key + self._b) % _PRIME) % self._n]
        if bucket is None:
            return -1
        index = bucket.locate(key)
        if index != -1 and self._keys[index] == key:
            return index
        return -1

    def __contains__(self, key: int) -> bool:
        return self._locate(key) != -1

    def __getitem__(self, key: int) -> Any:
        index = self._locate(key)
        if index == -1:
            raise KeyError(key)
        return self._values[index]

    def get(self, key: int, default: Any = None) -> Any:
        index = self._locate(key)
        return self._values[index] if index != -1 else default

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        self._ensure_scalar()
        return iter(self._keys)

    def items(self) -> Iterator[Tuple[int, Any]]:
        self._ensure_scalar()
        return iter(zip(self._keys, self._values))

    # ------------------------------------------------------------------
    # batch lookup (the compiled-oracle fast path)
    # ------------------------------------------------------------------
    def _freeze(self) -> _FrozenTables:
        """Build the frozen multiply-shift tables (lazy, seeded).

        Level one hashes into ``2^ceil(log2 n)`` buckets; every bucket
        with ``b`` keys gets a private power-of-two table of at least
        ``2 b²`` slots, re-drawing its (odd) multiplier until
        injective — the FKS construction with a multiply-shift family.
        Expected total size stays linear (collision probability is
        ``2 / 2^l``).  Only float-valued maps can freeze, which covers
        every distance table the oracle builds.
        """
        if self._frozen is not None:
            return self._frozen
        try:
            values = np.asarray(self._values, dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise TypeError(
                "batch lookup requires float values; this map stores "
                f"{type(self._values[0]).__name__}"
            ) from error
        if values.ndim != 1:  # e.g. sequence values forming a matrix
            raise TypeError("batch lookup requires scalar float values")
        keys = np.asarray(self._keys, dtype=np.uint64)
        n = self._n
        # Independent stream from the scalar build's: offset the seed.
        rng = random.Random(self._seed + 0x5EED_F02E)
        level1_bits = max(1, (n - 1).bit_length())
        level1_shift = 64 - level1_bits
        num_buckets = 1 << level1_bits
        for _ in range(self._MAX_LEVEL1_RETRIES):
            level1_a = rng.randrange(1, 1 << 64) | 1
            buckets = ((np.uint64(level1_a) * keys)
                       >> np.uint64(level1_shift)).astype(np.int64)
            counts = np.bincount(buckets, minlength=num_buckets)
            if int(np.sum(counts * counts)) <= 8 * n:
                break
        else:  # pragma: no cover - astronomically unlikely
            raise RuntimeError("frozen level-1 failed to converge")

        level2_a = np.ones(num_buckets, dtype=np.uint64)
        # Empty buckets share one all-empty 2-slot region at offset 0;
        # a shift of 63 keeps their probed slot inside it.
        level2_shift = np.full(num_buckets, 63, dtype=np.uint64)
        level2_offset = np.zeros(num_buckets, dtype=np.int64)
        order = np.argsort(buckets, kind="stable")
        boundaries = np.searchsorted(buckets[order],
                                     np.arange(num_buckets + 1))
        starts = boundaries[:-1]

        # Singleton buckets — the vast majority — are collision-free
        # under any multiplier, so one shared draw handles them all in
        # a few vectorized passes (2-slot tables each).
        singles = np.flatnonzero(counts == 1)
        multis = np.flatnonzero(counts >= 2)
        single_a = np.uint64(rng.randrange(1, 1 << 64) | 1)
        single_members = order[starts[singles]]
        single_offsets = 2 + 2 * np.arange(singles.size, dtype=np.int64)
        level2_a[singles] = single_a
        level2_offset[singles] = single_offsets
        single_slots = ((single_a * keys[single_members])
                        >> np.uint64(63)).astype(np.int64)

        multi_bits = [
            max(1, int(2 * int(counts[b]) ** 2 - 1).bit_length())
            for b in multis
        ]
        total = 2 + 2 * singles.size + sum(1 << bits
                                           for bits in multi_bits)
        slots = np.full(total, -1, dtype=np.int64)
        slots[single_offsets + single_slots] = single_members
        offset = 2 + 2 * singles.size
        for bucket_id, bits in zip(multis, multi_bits):
            members = order[boundaries[bucket_id]:
                            boundaries[bucket_id + 1]]
            member_keys = keys[members]
            for _ in range(self._MAX_BUCKET_RETRIES):
                a = rng.randrange(1, 1 << 64) | 1
                slot = (np.uint64(a) * member_keys) \
                    >> np.uint64(64 - bits)
                if np.unique(slot).size == members.size:
                    break
            else:  # pragma: no cover - astronomically unlikely
                raise RuntimeError("frozen bucket failed to converge")
            slots[offset + slot.astype(np.int64)] = members
            level2_a[bucket_id] = a
            level2_shift[bucket_id] = 64 - bits
            level2_offset[bucket_id] = offset
            offset += 1 << bits
        self._frozen = _FrozenTables(
            level1_a, level1_shift, keys=keys, values=values,
            level2_a=level2_a, level2_shift=level2_shift,
            level2_offset=level2_offset, slots=slots,
        )
        return self._frozen

    def get_batch(self, keys, default: float = float("nan")) -> np.ndarray:
        """Vectorized :meth:`get` over an array of non-negative int keys.

        Returns a float64 array of ``keys``'s shape holding the stored
        value per present key and ``default`` per absent key; requires
        the map's values to be floats.  Lookups agree with :meth:`get`
        key for key (both address the same key/value arrays); the batch
        path probes the frozen multiply-shift tables, costing ~10 NumPy
        passes for the *whole* batch instead of two modular hash
        evaluations per key in Python.

        Keys outside the stored set — including sentinel-padded pair
        keys beyond the packed-id domain — resolve to ``default``.
        """
        key_array = np.asarray(keys, dtype=np.uint64)
        if self._n == 0:
            return np.full(key_array.shape, default, dtype=np.float64)
        tables = self._freeze()
        flat = np.ascontiguousarray(key_array).reshape(-1)
        bucket = (tables.level1_a * flat) >> tables.level1_shift
        slot = ((tables.level2_a[bucket] * flat)
                >> tables.level2_shift[bucket]).astype(np.int64)
        index = tables.slots[tables.level2_offset[bucket] + slot]
        guarded = np.where(index >= 0, index, 0)
        found = (index >= 0) & (tables.keys[guarded] == flat)
        result = np.where(found, tables.values[guarded],
                          np.float64(default))
        return result.reshape(key_array.shape)

    def frozen_arrays(self) -> Dict[str, np.ndarray]:
        """The frozen tables as named flat arrays, for persistence.

        Freezes first if needed.  ``level1`` packs the two level-one
        scalars ``(a, shift)``; the remaining entries are the table
        arrays exactly as :meth:`get_batch` probes them, so
        :meth:`from_frozen` round-trips lookups bit-for-bit.
        """
        tables = self._freeze()
        return {
            "level1": np.array([int(tables.level1_a),
                                int(tables.level1_shift)], dtype=np.uint64),
            "keys": tables.keys,
            "values": tables.values,
            "level2_a": tables.level2_a,
            "level2_shift": tables.level2_shift,
            "level2_offset": tables.level2_offset,
            "slots": tables.slots,
        }

    # ------------------------------------------------------------------
    # size accounting (for the oracle's size model)
    # ------------------------------------------------------------------
    def slot_count(self) -> int:
        """Total number of second-level slots (the FKS space bound).

        A frozen-first map (:meth:`from_frozen`) reports the frozen
        table's slot count — the comparable space bound of the
        multiply-shift twin — *regardless* of whether the scalar FKS
        structures have been rebuilt since, so size accounting never
        drifts with access history.
        """
        if self._frozen_first:
            return int(self._frozen.slots.shape[0])
        return sum(bucket.size for bucket in self._buckets if bucket is not None)

    def size_bytes(self, value_bytes: int = 8) -> int:
        """Deterministic byte-count model: 8 bytes per slot/key + values."""
        return 8 * self.slot_count() + (8 + value_bytes) * self._n
